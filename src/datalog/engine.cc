#include "datalog/engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "common/fault_injection.h"
#include "datalog/analysis/analyzer.h"
#include "datalog/analysis/cost.h"
#include "datalog/analysis/harmful.h"

namespace vadalink::datalog {

namespace {

/// Equality with int/double numeric coercion (1 == 1.0).
bool ValuesEqualCoerced(const Value& a, const Value& b) {
  if (a == b) return true;
  if (a.is_numeric() && b.is_numeric()) return a.AsNumber() == b.AsNumber();
  return false;
}

/// Renders a cost estimate for status messages ("1.2e+09", "64").
std::string FormatCost(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Static cost analysis of `program` seeded with the live relation sizes
/// of `db` (predicates with rows keep their actual cardinality; empty /
/// unknown ones fall back to the analysis defaults). Used for the
/// planner's cold-relation priors and Query()'s cost admission.
analysis::CostReport ComputeStaticCost(const Database* db,
                                       const Program& program) {
  const Catalog* cat = db->catalog();
  analysis::CostOptions copt;
  copt.edb_cardinalities.assign(cat->predicates.size(), -1.0);
  for (uint32_t p = 0; p < cat->predicates.size(); ++p) {
    const Relation* rel = db->relation(p);
    if (rel != nullptr && rel->size() > 0) {
      copt.edb_cardinalities[p] = static_cast<double>(rel->size());
    }
  }
  return analysis::AnalyzeCost(program, *cat, copt);
}

/// True if the expression tree contains a '#function' call (calls may
/// intern symbols or invent Skolem terms, so they disqualify a rule from
/// the parallel match phase).
bool HasCall(const Expr& e) {
  if (e.op == Expr::Op::kCall) return true;
  for (const Expr& c : e.children) {
    if (HasCall(c)) return true;
  }
  return false;
}

/// Evictability analysis of the streaming chase (DESIGN.md section 13).
///
/// A predicate p may have exhausted delta epochs released iff every future
/// read can only touch its current delta window:
///  * p is an IDB predicate (some rule head derives it) — EDB relations
///    are the caller's data and are never touched;
///  * p is never negated ("not p(...)" re-reads arbitrary old rows);
///  * every rule reading p positively is in p's own stratum (a later
///    stratum opens with a naive pass over the FULL relation), mentions p
///    exactly once among its positive atoms, and every other positive atom
///    of that rule is closed (not an IDB head — a delta firing on a
///    co-atom would join against old p rows);
///  * p is not an @output, unless `sink_set`: callers scan outputs after
///    the run, so their rows must survive — or be streamed out on
///    eviction;
///  * p is not the query goal (Engine::Query scans it for answers).
std::vector<bool> ComputeEvictable(const Program& program,
                                   const Stratification& strat,
                                   size_t num_preds, bool sink_set,
                                   uint32_t goal_pred) {
  std::vector<bool> is_head(num_preds, false);
  for (const Rule& rule : program.rules) {
    for (const Atom& head : rule.head) is_head[head.predicate] = true;
  }

  std::vector<bool> evictable = is_head;
  if (goal_pred < num_preds) evictable[goal_pred] = false;
  if (!sink_set) {
    for (uint32_t p : program.outputs) {
      if (p < num_preds) evictable[p] = false;
    }
  }

  std::vector<uint32_t> rule_stratum(program.rules.size(), 0);
  for (uint32_t s = 0; s < strat.strata.size(); ++s) {
    for (uint32_t r : strat.strata[s]) rule_stratum[r] = s;
  }

  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    std::vector<uint32_t> reads;  // positive IDB atoms of this rule
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegatedAtom) {
        evictable[lit.atom.predicate] = false;
      } else if (lit.kind == Literal::Kind::kAtom &&
                 is_head[lit.atom.predicate]) {
        reads.push_back(lit.atom.predicate);
      }
    }
    for (uint32_t p : reads) {
      size_t occurrences = 0;
      for (uint32_t q : reads) occurrences += (q == p);
      // More than one IDB atom in the body (p twice, or p joined with
      // another IDB predicate) means some delta firing re-reads old rows.
      if (occurrences != 1 || reads.size() != 1 ||
          rule_stratum[r] != strat.predicate_stratum[p]) {
        evictable[p] = false;
      }
    }
  }
  return evictable;
}

}  // namespace

Value Engine::AggState::Current(AggKind kind) const {
  switch (kind) {
    case AggKind::kMSum:
    case AggKind::kMProd:
      return all_int ? Value::Int(ival) : Value::Double(dval);
    case AggKind::kMMin:
    case AggKind::kMMax:
      return best;
    case AggKind::kMCount:
      return Value::Int(count);
  }
  return Value();
}

// ---------------------------------------------------------------------------
// Construction / preparation
// ---------------------------------------------------------------------------

Engine::Engine(Database* db, EngineOptions options)
    : db_(db), options_(options) {
  functions_.RegisterStandardLibrary();
}

Status Engine::Prepare(const Program& program) {
  compiled_.clear();
  compiled_.reserve(program.rules.size());

  Catalog* cat = db_->catalog();
  resolved_fns_.assign(cat->functions.size(), nullptr);
  for (uint32_t f = 0; f < cat->functions.size(); ++f) {
    resolved_fns_[f] = functions_.Find(cat->functions.Name(f));
  }

  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    const Rule& src = program.rules[r];
    CompiledRule cr;
    cr.id = r;
    cr.rule = src;
    cr.rule.body.clear();

    // Greedy reorder: pull ready filters/assignments forward, keep positive
    // atoms in source order, hold the aggregate back until every atom and
    // negation is placed (a contribution must correspond to a full match of
    // the relational part of the body).
    const size_t nvars = src.var_names.size();
    std::vector<bool> placed(src.body.size(), false);
    std::vector<bool> bound(nvars, false);
    size_t relational_remaining = 0;
    for (const Literal& l : src.body) {
      if (l.kind == Literal::Kind::kAtom ||
          l.kind == Literal::Kind::kNegatedAtom) {
        ++relational_remaining;
      }
    }

    auto expr_ready = [&](const Expr& e) {
      std::vector<bool> used(nvars, false);
      CollectExprVars(e, &used);
      for (size_t v = 0; v < nvars; ++v) {
        if (used[v] && !bound[v]) return false;
      }
      return true;
    };

    size_t placed_count = 0;
    while (placed_count < src.body.size()) {
      int take = -1;
      // 1. any ready non-atom, non-aggregate literal
      for (size_t i = 0; i < src.body.size() && take < 0; ++i) {
        if (placed[i]) continue;
        const Literal& l = src.body[i];
        switch (l.kind) {
          case Literal::Kind::kComparison:
            if (expr_ready(l.lhs) && expr_ready(l.rhs)) take = (int)i;
            break;
          case Literal::Kind::kAssignment:
            if (l.rhs.is_aggregate()) {
              if (relational_remaining == 0 && expr_ready(l.rhs)) {
                take = (int)i;
              }
            } else if (expr_ready(l.rhs)) {
              take = (int)i;
            }
            break;
          case Literal::Kind::kNegatedAtom: {
            bool ok = true;
            for (const Term& t : l.atom.args) {
              if (t.is_var() && !bound[t.var]) ok = false;
            }
            if (ok) take = (int)i;
            break;
          }
          default:
            break;
        }
      }
      // 2. next positive atom in source order
      if (take < 0) {
        for (size_t i = 0; i < src.body.size(); ++i) {
          if (!placed[i] && src.body[i].kind == Literal::Kind::kAtom) {
            take = (int)i;
            break;
          }
        }
      }
      if (take < 0) {
        return Status::InvalidArgument(
            "rule at " + src.span.ToString() +
            " cannot be ordered for evaluation (unbound variables): " +
            RuleToString(src, *cat));
      }
      const Literal& l = src.body[take];
      placed[take] = true;
      ++placed_count;
      if (l.kind == Literal::Kind::kAtom) {
        --relational_remaining;
        for (const Term& t : l.atom.args) {
          if (t.is_var()) bound[t.var] = true;
        }
      } else if (l.kind == Literal::Kind::kNegatedAtom) {
        --relational_remaining;
      } else if (l.kind == Literal::Kind::kAssignment) {
        bound[l.target_var] = true;
      }
      cr.rule.body.push_back(l);
    }

    // Positive atom positions within the reordered body.
    for (size_t i = 0; i < cr.rule.body.size(); ++i) {
      if (cr.rule.body[i].kind == Literal::Kind::kAtom) {
        cr.positive_atoms.push_back(i);
      }
      if (cr.rule.body[i].kind == Literal::Kind::kAssignment &&
          cr.rule.body[i].rhs.is_aggregate()) {
        cr.has_agg = true;
        cr.agg_pos = i;
      }
    }

    // Frontier (body-bound head vars) and existential vars.
    std::vector<bool> body_bound = BodyBoundVars(cr.rule);
    std::vector<bool> in_head(nvars, false);
    for (const Atom& h : cr.rule.head) {
      for (const Term& t : h.args) {
        if (t.is_var()) in_head[t.var] = true;
      }
    }
    for (uint32_t v = 0; v < nvars; ++v) {
      if (in_head[v] && body_bound[v]) cr.frontier_vars.push_back(v);
      if (in_head[v] && !body_bound[v]) cr.existential_vars.push_back(v);
    }

    // Aggregate group key: head vars bound by the body, minus the target.
    if (cr.has_agg) {
      uint32_t target = cr.rule.body[cr.agg_pos].target_var;
      for (uint32_t v : cr.frontier_vars) {
        if (v != target) cr.agg_group_vars.push_back(v);
      }
    }

    // Validate function references are resolvable.
    for (const Literal& l : cr.rule.body) {
      Status st = Status::OK();
      auto check = [&](const Expr& e, auto&& self) -> void {
        if (!st.ok()) return;
        if (e.op == Expr::Op::kCall && resolved_fns_[e.function] == nullptr) {
          st = Status::InvalidArgument(
              "unknown function #" + cat->functions.Name(e.function) +
              " in rule at " + src.span.ToString());
        }
        for (const Expr& c : e.children) self(c, self);
      };
      if (l.kind == Literal::Kind::kComparison) {
        check(l.lhs, check);
        check(l.rhs, check);
      } else if (l.kind == Literal::Kind::kAssignment) {
        check(l.rhs, check);
      }
      VL_RETURN_NOT_OK(st);
    }

    // Planner / parallel eligibility (see CompiledRule). Reordering is
    // only legal when match enumeration order is invisible; the parallel
    // phase additionally excludes '#function' calls (they may intern
    // symbols) and needs an atom to anchor the fan-out on.
    cr.reorderable = !cr.has_agg && cr.existential_vars.empty();
    cr.parallel_ok = cr.reorderable && !cr.positive_atoms.empty();
    for (const Literal& l : cr.rule.body) {
      if (!cr.parallel_ok) break;
      if (l.kind == Literal::Kind::kComparison &&
          (HasCall(l.lhs) || HasCall(l.rhs))) {
        cr.parallel_ok = false;
      }
      if (l.kind == Literal::Kind::kAssignment && HasCall(l.rhs)) {
        cr.parallel_ok = false;
      }
    }

    compiled_.push_back(std::move(cr));
  }

  // Streaming: mark the rules whose null-carrying frontiers the pattern
  // memo may collapse. Only engaged for warded programs — the memo's
  // isomorphism argument is a wardedness property (analysis/harmful.h).
  if (options_.streaming) {
    analysis::HarmfulVarReport harmful =
        analysis::AnalyzeHarmfulVariables(program, *cat);
    if (harmful.warded) {
      for (CompiledRule& cr : compiled_) {
        cr.memo_eligible = harmful.rules[cr.id].memo_eligible;
      }
    }
  }

  // Static cardinality priors: the hi bounds of the cost analysis, seeded
  // with live relation sizes. BuildPlan falls back to them for relations
  // that are still cold (no rows, hence no index statistics) — before this,
  // every cold atom cost 0.0 and the planner ordered them arbitrarily.
  {
    analysis::CostReport cost = ComputeStaticCost(db_, program);
    cost_prior_hi_.assign(cost.predicates.size(), 0.0);
    for (size_t p = 0; p < cost.predicates.size(); ++p) {
      cost_prior_hi_[p] = cost.predicates[p].hi;
    }
    program_cost_estimate_ = cost.program_cost;
  }

  plan_cache_.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Join planning
// ---------------------------------------------------------------------------

const Engine::JoinPlan& Engine::PlanFor(const CompiledRule& cr,
                                        int delta_occurrence) {
  const uint64_t key = (static_cast<uint64_t>(cr.id) << 16) |
                       static_cast<uint16_t>(delta_occurrence + 1);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    ++stats_.plan_cache_hits;
    return it->second;
  }
  ++stats_.plans_computed;
  return plan_cache_.emplace(key, BuildPlan(cr, delta_occurrence))
      .first->second;
}

Engine::JoinPlan Engine::BuildPlan(const CompiledRule& cr,
                                   int delta_occurrence) {
  const auto& body = cr.rule.body;
  const size_t nvars = cr.rule.var_names.size();
  const Database* cdb = static_cast<const Database*>(db_);
  const Catalog* cat = db_->catalog();
  const bool worst = options_.join_order == JoinOrder::kWorstCase;

  JoinPlan plan;
  plan.steps.reserve(body.size());
  std::vector<bool> bound(nvars, false);
  std::vector<bool> placed(body.size(), false);
  size_t relational_remaining = 0;
  for (const Literal& l : body) {
    if (l.kind == Literal::Kind::kAtom ||
        l.kind == Literal::Kind::kNegatedAtom) {
      ++relational_remaining;
    }
  }

  auto expr_ready = [&](const Expr& e) {
    std::vector<bool> used(nvars, false);
    CollectExprVars(e, &used);
    for (size_t v = 0; v < nvars; ++v) {
      if (used[v] && !bound[v]) return false;
    }
    return true;
  };

  // Probe column of an atom given the current bound set. kPlanned picks
  // the bound/constant column with the most distinct values (tightest
  // posting lists); non-reorderable rules and kWorstCase keep the legacy
  // first-bound-argument choice so their candidate enumeration matches
  // the compiled order exactly.
  auto choose_probe = [&](const Atom& a, bool best_distinct) {
    int probe = -1;
    size_t best = 0;
    const Relation* rel = cdb->relation(a.predicate);
    for (size_t p = 0; p < a.args.size(); ++p) {
      const Term& t = a.args[p];
      if (t.is_var() && !bound[t.var]) continue;
      if (!best_distinct) return static_cast<int>(p);
      const size_t d = rel == nullptr ? 0 : rel->DistinctCount(p);
      if (probe < 0 || d > best) {
        probe = static_cast<int>(p);
        best = d;
      }
    }
    return probe;
  };

  // Estimated rows the atom contributes per outer match: relation size
  // over the probe column's distinct count, or the full size when no
  // argument is bound yet. Cold relations (no rows, hence no index
  // statistics — typically IDB predicates before their stratum fills
  // them) fall back to the static cardinality prior from the cost
  // analysis, with a sqrt(N) distinct-count stand-in per bound column.
  auto atom_cost = [&](const Atom& a) -> double {
    const Relation* rel = cdb->relation(a.predicate);
    if (rel == nullptr || rel->size() == 0) {
      const double n = a.predicate < cost_prior_hi_.size()
                           ? cost_prior_hi_[a.predicate]
                           : 0.0;
      if (n <= 0.0) return 0.0;
      ++stats_.cost_priors_used;
      double best = n;
      const double d = std::max(1.0, std::sqrt(n));
      for (size_t p = 0; p < a.args.size(); ++p) {
        const Term& t = a.args[p];
        if (t.is_var() && !bound[t.var]) continue;
        best = std::min(best, n / d);
      }
      return best;
    }
    const double n = static_cast<double>(rel->size());
    double best = n;
    for (size_t p = 0; p < a.args.size(); ++p) {
      const Term& t = a.args[p];
      if (t.is_var() && !bound[t.var]) continue;
      const double d = static_cast<double>(rel->DistinctCount(p));
      if (d > 0) best = std::min(best, n / d);
    }
    return best;
  };

  auto place = [&](size_t i, bool is_delta) {
    const Literal& l = body[i];
    PlanStep step;
    step.lit = static_cast<uint32_t>(i);
    step.is_delta = is_delta;
    if (l.kind == Literal::Kind::kAtom) {
      step.probe_arg = choose_probe(l.atom, cr.reorderable && !worst);
      --relational_remaining;
      if (!plan.steps.empty() && step.probe_arg >= 0) {
        plan.warm_probes.push_back(
            {l.atom.predicate, static_cast<uint32_t>(step.probe_arg)});
      }
      if (!plan.desc.empty()) plan.desc += " ";
      plan.desc += cat->predicates.Name(l.atom.predicate);
      if (is_delta) plan.desc += "[delta]";
      plan.desc += step.probe_arg >= 0
                       ? "@" + std::to_string(step.probe_arg)
                       : "@scan";
      // Compile one action per column against the static bound set; a
      // repeated variable binds at its first column and checks after.
      step.args.reserve(l.atom.args.size());
      for (const Term& t : l.atom.args) {
        ArgOp op;
        if (!t.is_var()) {
          op.kind = ArgOp::Kind::kCheckConst;
          op.constant = t.constant;
        } else if (bound[t.var]) {
          op.kind = ArgOp::Kind::kCheckVar;
          op.var = t.var;
        } else {
          op.kind = ArgOp::Kind::kBindVar;
          op.var = t.var;
          bound[t.var] = true;
        }
        step.args.push_back(op);
      }
      if (step.probe_arg >= 0) {
        // choose_probe only picks constant or already-bound columns, so
        // the probe value source is static too — and every posting-list
        // row matches it exactly, making the column's check redundant.
        const Term& t = l.atom.args[static_cast<size_t>(step.probe_arg)];
        step.probe_is_var = t.is_var();
        if (t.is_var()) {
          step.probe_var = t.var;
        } else {
          step.probe_const = t.constant;
        }
        step.args[static_cast<size_t>(step.probe_arg)].kind =
            ArgOp::Kind::kSkip;
        // Inserts below this step only ever target the rule's head
        // predicates; if this atom's predicate is not one of them, its
        // index cannot move mid-iteration and the posting list may be
        // walked in place (epoch stays put, so the debug stamp agrees).
        step.probe_in_place = true;
        for (const Atom& h : cr.rule.head) {
          if (h.predicate == l.atom.predicate) step.probe_in_place = false;
        }
      }
    } else if (l.kind == Literal::Kind::kNegatedAtom) {
      --relational_remaining;
      if (!plan.desc.empty()) plan.desc += " ";
      plan.desc += "!" + cat->predicates.Name(l.atom.predicate);
    } else if (l.kind == Literal::Kind::kAssignment) {
      step.target_prebound = bound[l.target_var];
      bound[l.target_var] = true;
      if (!plan.desc.empty()) plan.desc += " ";
      plan.desc += l.rhs.is_aggregate() ? "agg" : "let";
    } else {
      if (!plan.desc.empty()) plan.desc += " ";
      plan.desc += "cmp";
    }
    placed[i] = true;
    plan.steps.push_back(step);
  };

  if (!cr.reorderable) {
    // Compiled order verbatim; only probe columns are chosen.
    for (size_t i = 0; i < body.size(); ++i) {
      const bool is_delta =
          delta_occurrence >= 0 && body[i].kind == Literal::Kind::kAtom &&
          cr.positive_atoms[static_cast<size_t>(delta_occurrence)] == i;
      place(i, is_delta);
    }
    return plan;
  }

  // Anchor: the delta atom in semi-naive rounds (bind the freshest facts
  // first), otherwise the cheapest atom (most expensive under kWorstCase).
  if (delta_occurrence >= 0) {
    place(cr.positive_atoms[static_cast<size_t>(delta_occurrence)],
          /*is_delta=*/true);
  } else if (!cr.positive_atoms.empty()) {
    size_t anchor = cr.positive_atoms[0];
    double anchor_cost = atom_cost(body[anchor].atom);
    for (size_t k = 1; k < cr.positive_atoms.size(); ++k) {
      const size_t i = cr.positive_atoms[k];
      const double c = atom_cost(body[i].atom);
      if (worst ? c > anchor_cost : c < anchor_cost) {
        anchor = i;
        anchor_cost = c;
      }
    }
    place(anchor, /*is_delta=*/false);
  }

  size_t placed_count = plan.steps.size();
  while (placed_count < body.size()) {
    // 1. Every ready filter / negation / assignment runs as early as
    //    possible (they only ever shrink the match set). The aggregate
    //    waits for the full relational part, exactly as in Prepare().
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (size_t i = 0; i < body.size(); ++i) {
        if (placed[i]) continue;
        const Literal& l = body[i];
        bool ready = false;
        switch (l.kind) {
          case Literal::Kind::kComparison:
            ready = expr_ready(l.lhs) && expr_ready(l.rhs);
            break;
          case Literal::Kind::kAssignment:
            ready = l.rhs.is_aggregate()
                        ? relational_remaining == 0 && expr_ready(l.rhs)
                        : expr_ready(l.rhs);
            break;
          case Literal::Kind::kNegatedAtom: {
            ready = true;
            for (const Term& t : l.atom.args) {
              if (t.is_var() && !bound[t.var]) ready = false;
            }
            break;
          }
          default:
            break;
        }
        if (ready) {
          place(i, false);
          ++placed_count;
          progressed = true;
        }
      }
    }
    if (placed_count == body.size()) break;

    // 2. Next atom by estimated selectivity (inverted under kWorstCase;
    //    ties broken by body position for determinism).
    int take = -1;
    double take_cost = 0.0;
    for (size_t i = 0; i < body.size(); ++i) {
      if (placed[i] || body[i].kind != Literal::Kind::kAtom) continue;
      const double c = atom_cost(body[i].atom);
      if (take < 0 || (worst ? c > take_cost : c < take_cost)) {
        take = static_cast<int>(i);
        take_cost = c;
      }
    }
    if (take < 0) {
      // Unreachable: Prepare() proved a valid order exists, atoms have no
      // preconditions, and readiness is monotone in the bound set. Fall
      // back to compiled order to stay safe in release builds.
      assert(false && "join planner stuck on an orderable rule");
      for (size_t i = 0; i < body.size(); ++i) {
        if (!placed[i]) {
          place(i, false);
          ++placed_count;
        }
      }
      break;
    }
    place(static_cast<size_t>(take), false);
    ++placed_count;
  }
  return plan;
}

std::vector<std::string> Engine::PlanSummaries() const {
  std::vector<uint64_t> keys;
  keys.reserve(plan_cache_.size());
  for (const auto& [key, plan] : plan_cache_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  const Catalog* cat = db_->catalog();
  std::vector<std::string> out;
  out.reserve(keys.size());
  for (uint64_t key : keys) {
    const uint32_t rule = static_cast<uint32_t>(key >> 16);
    const int occ = static_cast<int>(key & 0xffff) - 1;
    std::string line = "rule " + std::to_string(rule);
    if (occ >= 0 && rule < compiled_.size()) {
      const CompiledRule& cr = compiled_[rule];
      const uint32_t pred =
          cr.rule.body[cr.positive_atoms[static_cast<size_t>(occ)]]
              .atom.predicate;
      line += " delta " + cat->predicates.Name(pred) + "#" +
              std::to_string(occ);
    }
    line += ": " + plan_cache_.at(key).desc;
    out.push_back(std::move(line));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

Result<Value> Engine::Eval(const Expr& e, const CompiledRule& rule,
                           const std::vector<Value>& subst) {
  switch (e.op) {
    case Expr::Op::kConst:
      return e.constant;
    case Expr::Op::kVar:
      return subst[e.var];
    case Expr::Op::kNeg: {
      VL_ASSIGN_OR_RETURN(Value v, Eval(e.children[0], rule, subst));
      if (v.is_int()) return Value::Int(-v.AsInt());
      if (v.is_double()) return Value::Double(-v.AsDouble());
      return Status::InvalidArgument("unary minus on non-numeric value");
    }
    case Expr::Op::kAdd:
    case Expr::Op::kSub:
    case Expr::Op::kMul:
    case Expr::Op::kDiv:
    case Expr::Op::kMod: {
      VL_ASSIGN_OR_RETURN(Value a, Eval(e.children[0], rule, subst));
      VL_ASSIGN_OR_RETURN(Value b, Eval(e.children[1], rule, subst));
      if (!a.is_numeric() || !b.is_numeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      if (e.op == Expr::Op::kDiv) {
        double denom = b.AsNumber();
        if (denom == 0.0) return Status::InvalidArgument("division by zero");
        return Value::Double(a.AsNumber() / denom);
      }
      if (a.is_int() && b.is_int()) {
        int64_t x = a.AsInt(), y = b.AsInt();
        switch (e.op) {
          case Expr::Op::kAdd: return Value::Int(x + y);
          case Expr::Op::kSub: return Value::Int(x - y);
          case Expr::Op::kMul: return Value::Int(x * y);
          case Expr::Op::kMod:
            if (y == 0) return Status::InvalidArgument("modulo by zero");
            return Value::Int(x % y);
          default: break;
        }
      }
      double x = a.AsNumber(), y = b.AsNumber();
      switch (e.op) {
        case Expr::Op::kAdd: return Value::Double(x + y);
        case Expr::Op::kSub: return Value::Double(x - y);
        case Expr::Op::kMul: return Value::Double(x * y);
        default:
          return Status::InvalidArgument("mod on non-integer values");
      }
    }
    case Expr::Op::kCall: {
      const ExternalFn* fn = resolved_fns_[e.function];
      if (fn == nullptr) {
        return Status::InvalidArgument(
            "unknown function #" +
            db_->catalog()->functions.Name(e.function));
      }
      std::vector<Value> args;
      args.reserve(e.children.size());
      for (const Expr& c : e.children) {
        VL_ASSIGN_OR_RETURN(Value v, Eval(c, rule, subst));
        args.push_back(v);
      }
      FunctionContext ctx{&db_->catalog()->symbols, db_->skolems()};
      return (*fn)(ctx, args);
    }
    case Expr::Op::kAggregate:
      return Status::Internal("aggregate evaluated outside assignment");
  }
  return Status::Internal("unreachable expression kind");
}

Result<bool> Engine::EvalComparison(const Literal& lit,
                                    const CompiledRule& rule,
                                    const std::vector<Value>& subst) {
  VL_ASSIGN_OR_RETURN(Value a, Eval(lit.lhs, rule, subst));
  VL_ASSIGN_OR_RETURN(Value b, Eval(lit.rhs, rule, subst));
  switch (lit.cmp) {
    case CmpOp::kEq: return ValuesEqualCoerced(a, b);
    case CmpOp::kNe: return !ValuesEqualCoerced(a, b);
    default: break;
  }
  // Ordered comparisons: numerics numerically, symbols lexicographically.
  int c;
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsNumber(), y = b.AsNumber();
    c = x < y ? -1 : (x > y ? 1 : 0);
  } else if (a.is_symbol() && b.is_symbol()) {
    const auto& sa = db_->catalog()->symbols.Name(a.symbol_id());
    const auto& sb = db_->catalog()->symbols.Name(b.symbol_id());
    c = sa.compare(sb);
    c = c < 0 ? -1 : (c > 0 ? 1 : 0);
  } else {
    return Status::InvalidArgument(
        "ordered comparison between incompatible values");
  }
  switch (lit.cmp) {
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
    default: return Status::Internal("unreachable comparison");
  }
}

// ---------------------------------------------------------------------------
// Rule evaluation
// ---------------------------------------------------------------------------

Status Engine::EmitHead(CompiledRule& cr, MatchCtx* ctx) {
  ++stats_.body_matches;
  VL_RETURN_NOT_OK(CheckRun(options_.run_ctx));

  // Invent nulls for existential vars, memoised on the frontier.
  if (!cr.existential_vars.empty()) {
    std::vector<Value> frontier;
    frontier.reserve(cr.frontier_vars.size());
    for (uint32_t v : cr.frontier_vars) frontier.push_back(ctx->subst[v]);
    // Streaming: a frontier differing from an earlier one only in its
    // labeled nulls re-fires the rule isomorphically — every fact it
    // would derive is a null renaming of facts already derived. Skip it.
    // Ground frontiers never enter the memo, so non-existential workloads
    // are byte-identical with streaming on or off.
    if (cr.memo_eligible) {
      bool has_null = false;
      for (const Value& v : frontier) has_null = has_null || v.is_null();
      if (has_null) {
        ++stats_.memo_queries;
        if (pattern_memo_.SeenOrInsert(cr.id, frontier)) {
          ++stats_.memo_hits;
          return Status::OK();
        }
      }
    }
    for (uint32_t v : cr.existential_vars) {
      size_t before = db_->nulls()->size();
      uint64_t id = db_->nulls()->Get(cr.id, v, frontier);
      if (db_->nulls()->size() > before) ++stats_.nulls_invented;
      ctx->subst[v] = Value::Null(id);
    }
  }

  for (const Atom& head : cr.rule.head) {
    std::vector<Value>& tuple = ctx->tuple_scratch;
    tuple.clear();
    tuple.reserve(head.args.size());
    for (const Term& t : head.args) {
      tuple.push_back(t.is_var() ? ctx->subst[t.var] : t.constant);
    }
    VL_ASSIGN_OR_RETURN(
        bool inserted,
        db_->Insert(head.predicate, tuple.data(), tuple.size()));
    if (inserted) {
      ++stats_.facts_derived;
      ctx->inserted_any = true;
      VL_RETURN_NOT_OK(ConsumeRunWork(options_.run_ctx, 1));
      if (options_.trace_provenance) {
        const Relation* rel = db_->relation(head.predicate);
        uint64_t key = (static_cast<uint64_t>(head.predicate) << 32) |
                       static_cast<uint64_t>(rel->size() - 1);
        provenance_.emplace(key, Derivation{cr.id, ctx->premises});
      }
    }
  }
  if (db_->TotalFacts() > options_.max_facts) {
    return Status::ResourceExhausted("fact limit exceeded (" +
                                     std::to_string(options_.max_facts) +
                                     "); chase aborted");
  }
  return Status::OK();
}

Status Engine::MatchFrom(
    CompiledRule& cr, const JoinPlan& plan, size_t step,
    const std::vector<std::pair<size_t, size_t>>& deltas, MatchCtx* ctx) {
  if (step == plan.steps.size()) {
    if (ctx->collect != nullptr) {
      // Parallel collect phase: capture the match, defer every mutation
      // (insert, stats, provenance) to the sequential commit.
      CollectedMatch m;
      m.premises = ctx->premises;
      m.head_tuples.reserve(cr.rule.head.size());
      for (const Atom& head : cr.rule.head) {
        std::vector<Value> tuple;
        tuple.reserve(head.args.size());
        for (const Term& t : head.args) {
          tuple.push_back(t.is_var() ? ctx->subst[t.var] : t.constant);
        }
        m.head_tuples.push_back(std::move(tuple));
      }
      ctx->collect->push_back(std::move(m));
      return Status::OK();
    }
    return EmitHead(cr, ctx);
  }
  const PlanStep& ps = plan.steps[step];
  const Literal& lit = cr.rule.body[ps.lit];
  switch (lit.kind) {
    case Literal::Kind::kAtom: {
      // Const lookup: the non-const overload may resize the relation
      // vector, which the parallel collect phase must never do (and the
      // sequential path does not need).
      const Relation* rel =
          static_cast<const Database*>(db_)->relation(lit.atom.predicate);
      if (rel == nullptr || rel->size() == 0) return Status::OK();
      if (rel->arity() != lit.atom.args.size()) {
        return Status::InvalidArgument(
            "arity mismatch for predicate '" +
            db_->catalog()->predicates.Name(lit.atom.predicate) +
            "' in rule at " + cr.rule.span.ToString());
      }
      size_t lo = 0, hi = rel->size();
      if (ps.is_delta) {
        lo = deltas[lit.atom.predicate].first;
        hi = std::min(hi, deltas[lit.atom.predicate].second);
        if (lo >= hi) return Status::OK();
      }

      // Bind one candidate row against the atom's compiled per-column
      // actions and recurse. Boundness is static per plan position, so
      // there is no runtime bound-set and nothing to unbind on a failed
      // or exhausted match: stale substitution entries are always
      // overwritten by a later bind before any read. Cells are read
      // column-wise before the recursive call; row ids are stable under
      // appends, so nothing here dangles when a recursive insert
      // reallocates a column.
      auto try_row = [&](uint32_t idx) -> Status {
        VL_RETURN_NOT_OK(CheckRun(options_.run_ctx));
        for (size_t a = 0; a < ps.args.size(); ++a) {
          const ArgOp& op = ps.args[a];
          const Value& cell = rel->at(a, idx);
          switch (op.kind) {
            case ArgOp::Kind::kBindVar:
              ctx->subst[op.var] = cell;
              break;
            case ArgOp::Kind::kCheckVar:
              if (!(cell == ctx->subst[op.var])) return Status::OK();
              break;
            case ArgOp::Kind::kCheckConst:
              if (!(cell == op.constant)) return Status::OK();
              break;
            case ArgOp::Kind::kSkip:
              break;
          }
        }
        if (ctx->track_premises) {
          ctx->premises.push_back({lit.atom.predicate, idx});
          Status st = MatchFrom(cr, plan, step + 1, deltas, ctx);
          ctx->premises.pop_back();
          return st;
        }
        return MatchFrom(cr, plan, step + 1, deltas, ctx);
      };

      if (ps.probe_arg >= 0) {
        const Value& pv =
            ps.probe_is_var ? ctx->subst[ps.probe_var] : ps.probe_const;
        PostingView hits = rel->Probe(static_cast<size_t>(ps.probe_arg), pv);
        ++ctx->probes;
        if (hits.empty()) return Status::OK();
        const uint32_t* b = hits.begin();
        const uint32_t* e = hits.end();
        if (lo > 0 || hi < rel->size()) {
          // Posting lists are ascending row ids; slice the delta window.
          b = std::lower_bound(b, e, static_cast<uint32_t>(lo));
          e = std::lower_bound(b, e, static_cast<uint32_t>(hi));
        }
        if (ctx->collect != nullptr || ps.probe_in_place) {
          // Read-only phase, or a predicate no insert below can touch:
          // iterate the posting list in place.
          for (const uint32_t* p = b; p != e; ++p) {
            VL_RETURN_NOT_OK(try_row(*p));
          }
        } else {
          // Inserts deeper in the recursion can extend the index and move
          // the posting list; run over a copied snapshot (per-step scratch,
          // no steady-state allocation).
          std::vector<uint32_t>& cands = ctx->cand[step];
          cands.assign(b, e);
          for (uint32_t idx : cands) VL_RETURN_NOT_OK(try_row(idx));
        }
      } else {
        // Full scan of the (delta) range; row ids are stable, no copy.
        for (size_t idx = lo; idx < hi; ++idx) {
          VL_RETURN_NOT_OK(try_row(static_cast<uint32_t>(idx)));
        }
      }
      return Status::OK();
    }

    case Literal::Kind::kNegatedAtom: {
      std::vector<Value>& tuple = ctx->tuple_scratch;
      tuple.clear();
      tuple.reserve(lit.atom.args.size());
      for (const Term& t : lit.atom.args) {
        tuple.push_back(t.is_var() ? ctx->subst[t.var] : t.constant);
      }
      const Relation* rel =
          static_cast<const Database*>(db_)->relation(lit.atom.predicate);
      if (rel != nullptr && rel->arity() != SIZE_MAX &&
          rel->arity() != tuple.size()) {
        return Status::InvalidArgument(
            "arity mismatch under negation for predicate '" +
            db_->catalog()->predicates.Name(lit.atom.predicate) + "'");
      }
      if (rel != nullptr && rel->Contains(tuple.data(), tuple.size())) {
        return Status::OK();
      }
      return MatchFrom(cr, plan, step + 1, deltas, ctx);
    }

    case Literal::Kind::kComparison: {
      // Fast path for the overwhelmingly common shape: both operands are
      // plain variables or constants, compared as numbers or for
      // (in)equality. Anything else (symbols, arithmetic, calls) takes
      // the general evaluator.
      const Expr& le = lit.lhs;
      const Expr& re = lit.rhs;
      if ((le.op == Expr::Op::kVar || le.op == Expr::Op::kConst) &&
          (re.op == Expr::Op::kVar || re.op == Expr::Op::kConst)) {
        const Value& a =
            le.op == Expr::Op::kVar ? ctx->subst[le.var] : le.constant;
        const Value& b =
            re.op == Expr::Op::kVar ? ctx->subst[re.var] : re.constant;
        bool pass = false;
        bool handled = true;
        switch (lit.cmp) {
          case CmpOp::kEq: pass = ValuesEqualCoerced(a, b); break;
          case CmpOp::kNe: pass = !ValuesEqualCoerced(a, b); break;
          default:
            if (a.is_numeric() && b.is_numeric()) {
              const double x = a.AsNumber(), y = b.AsNumber();
              switch (lit.cmp) {
                case CmpOp::kLt: pass = x < y; break;
                case CmpOp::kLe: pass = x <= y; break;
                case CmpOp::kGt: pass = x > y; break;
                case CmpOp::kGe: pass = x >= y; break;
                default: handled = false; break;
              }
            } else {
              handled = false;
            }
        }
        if (handled) {
          if (!pass) return Status::OK();
          return MatchFrom(cr, plan, step + 1, deltas, ctx);
        }
      }
      VL_ASSIGN_OR_RETURN(bool pass, EvalComparison(lit, cr, ctx->subst));
      if (!pass) return Status::OK();
      return MatchFrom(cr, plan, step + 1, deltas, ctx);
    }

    case Literal::Kind::kAssignment: {
      if (!lit.rhs.is_aggregate()) {
        Value v;
        if (lit.rhs.op == Expr::Op::kVar) {
          v = ctx->subst[lit.rhs.var];
        } else if (lit.rhs.op == Expr::Op::kConst) {
          v = lit.rhs.constant;
        } else {
          VL_ASSIGN_OR_RETURN(Value ev, Eval(lit.rhs, cr, ctx->subst));
          v = ev;
        }
        if (ps.target_prebound) {
          if (!ValuesEqualCoerced(ctx->subst[lit.target_var], v)) {
            return Status::OK();
          }
          return MatchFrom(cr, plan, step + 1, deltas, ctx);
        }
        ctx->subst[lit.target_var] = v;
        return MatchFrom(cr, plan, step + 1, deltas, ctx);
      }

      // Monotonic aggregate: consume the contribution (at most once per
      // distinct contributor binding) and continue with the running value.
      const Expr& agg = lit.rhs;
      AggKey key;
      key.rule = cr.id;
      key.group.reserve(cr.agg_group_vars.size());
      for (uint32_t v : cr.agg_group_vars) key.group.push_back(ctx->subst[v]);

      std::vector<Value> contrib;
      contrib.reserve(agg.contributors.size());
      for (uint32_t v : agg.contributors) contrib.push_back(ctx->subst[v]);

      AggState& state = agg_states_[key];
      if (!state.contributors.insert(contrib).second) {
        // Already contributed: the running value is unchanged, and any head
        // facts it could produce were already produced. Prune.
        return Status::OK();
      }

      if (agg.agg == AggKind::kMCount) {
        ++state.count;
      } else {
        VL_ASSIGN_OR_RETURN(Value v, Eval(agg.children[0], cr, ctx->subst));
        if (agg.agg == AggKind::kMMin || agg.agg == AggKind::kMMax) {
          if (!v.is_numeric()) {
            return Status::InvalidArgument("mmin/mmax on non-numeric value");
          }
          if (!state.initialized) {
            state.best = v;
          } else {
            bool better = agg.agg == AggKind::kMMin
                              ? v.AsNumber() < state.best.AsNumber()
                              : v.AsNumber() > state.best.AsNumber();
            if (better) state.best = v;
          }
        } else {
          if (!v.is_numeric()) {
            return Status::InvalidArgument("msum/mprod on non-numeric value");
          }
          if (v.is_double()) state.all_int = false;
          if (!state.initialized) {
            state.dval = v.AsNumber();
            state.ival = v.is_int() ? v.AsInt() : 0;
          } else if (agg.agg == AggKind::kMSum) {
            state.dval += v.AsNumber();
            state.ival += v.is_int() ? v.AsInt() : 0;
          } else {  // kMProd
            state.dval *= v.AsNumber();
            state.ival *= v.is_int() ? v.AsInt() : 1;
          }
        }
        state.initialized = true;
      }

      ctx->subst[lit.target_var] = state.Current(agg.agg);
      Status st = MatchFrom(cr, plan, step + 1, deltas, ctx);
      // Note: the contribution is intentionally NOT rolled back — it was a
      // genuine match of the relational body; only post-aggregate filters
      // (e.g. thresholds) may have rejected emission this time.
      return st;
    }
  }
  return Status::Internal("unreachable literal kind");
}

Status Engine::EvalRule(CompiledRule& cr, int delta_occurrence,
                        const std::vector<std::pair<size_t, size_t>>& deltas) {
  const JoinPlan& plan = PlanFor(cr, delta_occurrence);
  const size_t nvars = cr.rule.var_names.size();
  MatchCtx ctx;
  ctx.subst.assign(nvars, Value());
  ctx.track_premises = options_.trace_provenance;
  ctx.cand.resize(plan.steps.size());
  Status st = MatchFrom(cr, plan, 0, deltas, &ctx);
  stats_.join_probes += ctx.probes;
  return st;
}

Status Engine::CommitMatch(CompiledRule& cr, const CollectedMatch& match) {
  ++stats_.body_matches;
  VL_RETURN_NOT_OK(CheckRun(options_.run_ctx));
  for (size_t h = 0; h < cr.rule.head.size(); ++h) {
    const Atom& head = cr.rule.head[h];
    VL_ASSIGN_OR_RETURN(bool inserted,
                        db_->Insert(head.predicate, match.head_tuples[h]));
    if (inserted) {
      ++stats_.facts_derived;
      VL_RETURN_NOT_OK(ConsumeRunWork(options_.run_ctx, 1));
      if (options_.trace_provenance) {
        const Relation* rel = db_->relation(head.predicate);
        uint64_t key = (static_cast<uint64_t>(head.predicate) << 32) |
                       static_cast<uint64_t>(rel->size() - 1);
        provenance_.emplace(key, Derivation{cr.id, match.premises});
      }
    }
  }
  if (db_->TotalFacts() > options_.max_facts) {
    return Status::ResourceExhausted("fact limit exceeded (" +
                                     std::to_string(options_.max_facts) +
                                     "); chase aborted");
  }
  return Status::OK();
}

Status Engine::ParallelEvalRule(
    CompiledRule& cr, int delta_occurrence,
    const std::vector<std::pair<size_t, size_t>>& deltas) {
  const JoinPlan& plan = PlanFor(cr, delta_occurrence);
  const Database* cdb = static_cast<const Database*>(db_);
  // Warm every index the workers will probe; from here to the commit loop
  // the database is only read (enforced by the parallel-read guard below).
  for (const auto& [pred, arg_pos] : plan.warm_probes) {
    const Relation* r = cdb->relation(pred);
    if (r != nullptr) r->WarmIndex(arg_pos);
  }

  // Anchor atom (plan step 0, guaranteed an atom by parallel_ok):
  // enumerate its candidates exactly like MatchFrom would, then fan the
  // list out in chunks.
  const PlanStep& anchor = plan.steps[0];
  const Literal& lit = cr.rule.body[anchor.lit];
  const Relation* rel = cdb->relation(lit.atom.predicate);
  if (rel == nullptr || rel->size() == 0) return Status::OK();
  if (rel->arity() != lit.atom.args.size()) {
    return Status::InvalidArgument(
        "arity mismatch for predicate '" +
        db_->catalog()->predicates.Name(lit.atom.predicate) +
        "' in rule at " + cr.rule.span.ToString());
  }
  size_t lo = 0, hi = rel->size();
  if (anchor.is_delta) {
    lo = deltas[lit.atom.predicate].first;
    hi = std::min(hi, deltas[lit.atom.predicate].second);
    if (lo >= hi) return Status::OK();
  }
  uint64_t anchor_probes = 0;
  std::vector<uint32_t> candidates;
  if (anchor.probe_arg >= 0) {
    // No variable is bound at depth 0, so the probe term is a constant.
    assert(!anchor.probe_is_var);
    PostingView hits =
        rel->Probe(static_cast<size_t>(anchor.probe_arg), anchor.probe_const);
    ++anchor_probes;
    const uint32_t* b = hits.begin();
    const uint32_t* e = hits.end();
    b = std::lower_bound(b, e, static_cast<uint32_t>(lo));
    e = std::lower_bound(b, e, static_cast<uint32_t>(hi));
    candidates.assign(b, e);
  } else {
    candidates.reserve(hi - lo);
    for (size_t idx = lo; idx < hi; ++idx) {
      candidates.push_back(static_cast<uint32_t>(idx));
    }
  }
  if (candidates.empty()) return Status::OK();

  const size_t nvars = cr.rule.var_names.size();
  const size_t g = ResolveGrain(candidates.size(), 0, options_.pool);
  const size_t num_chunks = (candidates.size() + g - 1) / g;
  std::vector<std::vector<CollectedMatch>> chunk_matches(num_chunks);
  std::vector<uint64_t> chunk_probes(num_chunks, 0);

  // Workers only read: Insert and cold-index Probe debug-assert until the
  // matching guard below is released.
  db_->BeginParallelRead();
  Status match_st = ParallelFor(
      options_.pool, candidates.size(), 0, options_.run_ctx,
      [&](size_t begin, size_t end, size_t chunk) {
        MatchCtx ctx;
        ctx.subst.assign(nvars, Value());
        ctx.track_premises = options_.trace_provenance;
        ctx.cand.resize(plan.steps.size());
        ctx.collect = &chunk_matches[chunk];
        Status st = Status::OK();
        for (size_t i = begin; i < end && st.ok(); ++i) {
          st = CheckRun(options_.run_ctx);
          if (!st.ok()) break;
          uint32_t idx = candidates[i];
          bool match = true;
          for (size_t a = 0; a < anchor.args.size() && match; ++a) {
            const ArgOp& op = anchor.args[a];
            const Value& cell = rel->at(a, idx);
            switch (op.kind) {
              case ArgOp::Kind::kBindVar:
                ctx.subst[op.var] = cell;
                break;
              case ArgOp::Kind::kCheckVar:
                match = cell == ctx.subst[op.var];
                break;
              case ArgOp::Kind::kCheckConst:
                match = cell == op.constant;
                break;
              case ArgOp::Kind::kSkip:
                break;
            }
          }
          if (match) {
            if (ctx.track_premises) {
              ctx.premises.push_back({lit.atom.predicate, idx});
            }
            st = MatchFrom(cr, plan, 1, deltas, &ctx);
            if (ctx.track_premises) ctx.premises.pop_back();
          }
        }
        // Per-chunk totals are summed after the join (order-independent),
        // so the published probe count is identical at every thread count.
        chunk_probes[chunk] = ctx.probes;
        return st;
      });
  db_->EndParallelRead();

  stats_.join_probes += anchor_probes;
  for (uint64_t p : chunk_probes) stats_.join_probes += p;

  // Single-threaded merge in ascending chunk order keeps insert order —
  // and thus fact indices, provenance and stats — deterministic. Chunks
  // that completed before a governor trip still commit, mirroring the
  // sequential "facts derived before the trip stay" behavior.
  for (const auto& matches : chunk_matches) {
    for (const CollectedMatch& m : matches) {
      VL_RETURN_NOT_OK(CommitMatch(cr, m));
    }
  }
  return match_st;
}

// ---------------------------------------------------------------------------
// Fixpoint driver
// ---------------------------------------------------------------------------

std::vector<size_t> Engine::RelationSizes() const {
  const size_t num_preds = db_->catalog()->predicates.size();
  std::vector<size_t> out(num_preds, 0);
  for (uint32_t p = 0; p < num_preds; ++p) {
    const Relation* rel = static_cast<const Database*>(db_)->relation(p);
    out[p] = rel ? rel->size() : 0;
  }
  return out;
}

Status Engine::EvalStratum(const std::vector<uint32_t>& rule_ids,
                           const std::vector<size_t>* initial_before) {
  const size_t num_preds = db_->catalog()->predicates.size();
  auto sizes = [&]() { return RelationSizes(); };

  // Parallel delta joins need a pool with real workers and an eligible
  // rule; everything else takes the sequential evaluator. threads = 1
  // keeps the legacy path bit-identical.
  const bool pooled =
      options_.pool != nullptr && options_.pool->thread_count() > 1;
  auto eval_rule = [&](CompiledRule& cr, int delta_occurrence,
                       const std::vector<std::pair<size_t, size_t>>& deltas) {
    if (pooled && cr.parallel_ok) {
      return ParallelEvalRule(cr, delta_occurrence, deltas);
    }
    return EvalRule(cr, delta_occurrence, deltas);
  };

  std::vector<size_t> before;
  if (initial_before == nullptr) {
    // Naive first pass.
    before = sizes();
    for (uint32_t r : rule_ids) {
      VL_RETURN_NOT_OK(eval_rule(compiled_[r], -1, {}));
    }
  } else {
    // Incremental: the delta window opens at the previous run's sizes.
    before = *initial_before;
    before.resize(num_preds, 0);
  }
  std::vector<size_t> after = sizes();
  stats_.peak_resident_facts =
      std::max(stats_.peak_resident_facts, db_->ResidentFacts());

  // Semi-naive iterations.
  size_t iteration = 0;
  while (after != before) {
    if (++iteration > options_.max_iterations) {
      return Status::ResourceExhausted(
          "iteration limit exceeded; chase aborted");
    }
    VL_RETURN_NOT_OK(CheckRunNow(options_.run_ctx));
    ++stats_.iterations;
    std::vector<std::pair<size_t, size_t>> deltas(num_preds);
    size_t delta_total = 0;
    for (uint32_t p = 0; p < num_preds; ++p) {
      deltas[p] = {before[p], after[p]};
      delta_total += after[p] - before[p];
    }
    // Streaming chase: rows below a predicate's delta window were fully
    // consumed — as the naive pass or an earlier delta anchor — and the
    // evictability analysis guarantees no plan reads them again, so their
    // column storage can go. @output rows stream to the sink first.
    for (uint32_t p = 0; !evictable_.empty() && p < num_preds; ++p) {
      if (!evictable_[p] || deltas[p].first == 0) continue;
      Relation* rel = db_->relation(p);
      const size_t watermark = deltas[p].first;
      if (watermark <= rel->first_resident()) continue;
      if (sink_outputs_[p]) {
        std::vector<Value> tuple(rel->arity());
        for (size_t r = rel->first_resident(); r < watermark; ++r) {
          for (size_t pos = 0; pos < tuple.size(); ++pos) {
            tuple[pos] = rel->at(pos, static_cast<uint32_t>(r));
          }
          options_.evict_sink(p, tuple.data(), tuple.size());
        }
      }
      stats_.evicted_rows += db_->EvictBelow(p, watermark);
    }
    // The per-iteration delta is a property of the semi-naive schedule,
    // not of the execution order, so the histogram is identical at every
    // thread count.
    MetricRecord(options_.metrics, "engine.delta.size", delta_total);
    before = after;
    for (uint32_t r : rule_ids) {
      CompiledRule& cr = compiled_[r];
      for (size_t k = 0; k < cr.positive_atoms.size(); ++k) {
        uint32_t pred =
            cr.rule.body[cr.positive_atoms[k]].atom.predicate;
        if (deltas[pred].first >= deltas[pred].second) continue;
        VL_RETURN_NOT_OK(eval_rule(cr, static_cast<int>(k), deltas));
      }
    }
    after = sizes();
    stats_.peak_resident_facts =
        std::max(stats_.peak_resident_facts, db_->ResidentFacts());
  }
  return Status::OK();
}

void Engine::PublishChaseMetrics() {
  MetricsRegistry* m = options_.metrics;
  if (m != nullptr) {
    // Saturating diff: stats_.strata is overwritten (not accumulated) per
    // call, so an incremental run of a smaller program could dip below the
    // published mark.
    auto diff = [](size_t now, size_t pub) { return now > pub ? now - pub : 0; };
    MetricAdd(m, "engine.strata", diff(stats_.strata, published_.strata));
    MetricAdd(m, "engine.iterations",
              diff(stats_.iterations, published_.iterations));
    MetricAdd(m, "engine.body_matches",
              diff(stats_.body_matches, published_.body_matches));
    MetricAdd(m, "engine.facts_derived",
              diff(stats_.facts_derived, published_.facts_derived));
    MetricAdd(m, "engine.nulls.invented",
              diff(stats_.nulls_invented, published_.nulls_invented));
    MetricAdd(m, "engine.plan.probes",
              diff(stats_.join_probes, published_.join_probes));
    MetricAdd(m, "engine.plan.computed",
              diff(stats_.plans_computed, published_.plans_computed));
    MetricAdd(m, "engine.plan.cache_hits",
              diff(stats_.plan_cache_hits, published_.plan_cache_hits));
    // engine.cost.*: the static cost analysis feeding the planner. The
    // program estimate is a property of the last Prepare()d program, so
    // it publishes as a gauge; priors_used counts cold-relation plan
    // decisions taken from the static intervals.
    MetricAdd(m, "engine.cost.priors_used",
              diff(stats_.cost_priors_used, published_.cost_priors_used));
    MetricSet(m, "engine.cost.program_estimate", program_cost_estimate_);
    // engine.memory.*: the streaming chase's space account. The peak is a
    // per-run high-water mark, so it publishes as a gauge, not a counter.
    if (options_.streaming) {
      MetricSet(m, "engine.memory.peak_resident_facts",
                stats_.peak_resident_facts);
      MetricAdd(m, "engine.memory.evicted_rows",
                diff(stats_.evicted_rows, published_.evicted_rows));
      MetricAdd(m, "engine.memory.memo_queries",
                diff(stats_.memo_queries, published_.memo_queries));
      MetricAdd(m, "engine.memory.memo_hits",
                diff(stats_.memo_hits, published_.memo_hits));
    }
  }
  published_ = stats_;
}

Status Engine::Preflight(const Program& program) {
  if (!options_.preflight) return Status::OK();
  analysis::AnalysisReport report =
      analysis::AnalyzeProgram(program, *db_->catalog());
  if (report.has_errors()) {
    return Status::InvalidArgument(
        "program rejected by static analysis pre-flight (" +
        std::to_string(report.error_count()) + " error(s)):\n" +
        report.Render());
  }
  if (options_.metrics != nullptr && !report.diagnostics.empty()) {
    MetricAdd(options_.metrics, "analysis.warnings",
              report.warning_count());
    for (const analysis::Diagnostic& d : report.diagnostics) {
      MetricAdd(options_.metrics, "analysis.diag." + d.code, 1);
    }
  }
  return Status::OK();
}

Status Engine::Run(const Program& program) {
  if (options_.query_goal != nullptr) {
    // Query-mode routing: evaluate only the goal-relevant fragment. The
    // answers are still materialized in the database, so callers that
    // scan relations afterwards see exactly the goal-matching facts.
    Result<QueryReport> report = Query(program, *options_.query_goal);
    return report.ok() ? Status::OK() : report.status();
  }
  Status st = RunImpl(program);
  last_abort_status_ = st;  // OK after a completed run
  return st;
}

Result<QueryReport> Engine::Query(const Program& program,
                                  const QueryGoal& goal) {
  const auto plan_start = std::chrono::steady_clock::now();
  Status preflight = Preflight(program);
  if (!preflight.ok()) {
    last_abort_status_ = preflight;
    return preflight;
  }

  MagicResult magic = MagicRewrite(program, db_->catalog(), goal);
  query_program_ = std::make_unique<Program>(std::move(magic.program));

  // Static cost of the program the chase will actually run (rewritten or
  // pruned), seeded with live relation sizes. Everything up to here —
  // preflight, dataflow, rewrite, estimation — is the planning phase the
  // plan_us clock covers.
  const double estimated_cost =
      ComputeStaticCost(db_, *query_program_).program_cost;
  const uint64_t plan_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - plan_start)
          .count());
  if (options_.metrics != nullptr) {
    MetricAdd(options_.metrics, "engine.query.plan_us", plan_us);
  }

  // Cost admission: reject over-budget goals before any evaluation burns
  // a worker. The message carries the estimate so serving layers can
  // surface it in the error payload.
  if (options_.max_query_cost > 0.0 &&
      estimated_cost > options_.max_query_cost) {
    Status reject = Status::ResourceExhausted(
        "query rejected by cost admission: static cost estimate " +
        FormatCost(estimated_cost) + " exceeds max query cost " +
        FormatCost(options_.max_query_cost));
    last_abort_status_ = reject;
    if (options_.metrics != nullptr) {
      MetricAdd(options_.metrics, "engine.query.cost_rejected", 1);
    }
    return reject;
  }

  // The rewritten program was already vetted through the source program's
  // pre-flight; its __magic_* constructs sit outside the analyzer's
  // warded fragment, so the inner run skips the gate. The goal is pinned
  // so the streaming chase never evicts the predicate the answer scan
  // below reads.
  const bool saved_preflight = options_.preflight;
  const QueryGoal* saved_goal = options_.query_goal;
  options_.preflight = false;
  options_.query_goal = &goal;
  Status st = RunImpl(*query_program_);
  options_.preflight = saved_preflight;
  options_.query_goal = saved_goal;
  last_abort_status_ = st;
  if (!st.ok()) return st;

  QueryReport report;
  report.rewritten = magic.rewritten;
  report.fallback_reason = magic.fallback_reason;
  report.fallback_code = magic.fallback_code;
  report.rules_pruned = magic.rules_pruned;
  report.magic_rules = magic.magic_rules;
  report.adornments = magic.adornments;
  report.facts_derived = stats_.facts_derived;
  report.estimated_cost = estimated_cost;
  report.plan_us = plan_us;
  for (RowRef row : db_->Scan(goal.atom.predicate)) {
    std::vector<Value> tuple = row.ToTuple();
    if (GoalMatches(goal, tuple)) report.answers.push_back(std::move(tuple));
  }
  std::sort(report.answers.begin(), report.answers.end());

  if (options_.metrics != nullptr) {
    MetricAdd(options_.metrics, "engine.query.runs", 1);
    if (!report.fallback_reason.empty()) {
      MetricAdd(options_.metrics, "engine.query.fallbacks", 1);
      // Per-cause breakdown: dashboards can tell a structural fallback
      // (negation, existentials) from an aggregate-escape one.
      if (!report.fallback_code.empty()) {
        MetricAdd(options_.metrics,
                  "engine.query.fallback." + report.fallback_code, 1);
      }
    }
    MetricAdd(options_.metrics, "engine.query.rules_pruned",
              report.rules_pruned);
    MetricAdd(options_.metrics, "engine.query.magic_rules",
              report.magic_rules);
    MetricAdd(options_.metrics, "engine.query.answers",
              report.answers.size());
  }
  return report;
}

Status Engine::RunIncremental(const Program& program) {
  if (last_run_aborted_) {
    // Name the aborting run's limit status so the caller can tell a
    // deadline trip from a budget trip from a cancellation without
    // spelunking: "previous run aborted (DeadlineExceeded: ...)".
    std::string cause = last_abort_status_.ok() ? "unknown cause"
                                                : last_abort_status_.ToString();
    return Status::InvalidArgument(
        "previous run aborted (" + cause +
        "); the delta window is unreliable — call Run() to re-establish "
        "the fixpoint");
  }
  if (db_->HasEvicted()) {
    // An incremental pass joins new deltas against the FULL old relations;
    // the streaming chase released exactly that column data.
    return Status::FailedPrecondition(
        "the streaming chase evicted " + std::to_string(db_->EvictedRows()) +
        " fact row(s) from this database; an incremental continuation "
        "would join against storage that no longer exists — re-run the "
        "program with streaming off on a fresh database to continue "
        "incrementally");
  }
  Status st = RunIncrementalImpl(program);
  last_abort_status_ = st;
  return st;
}

Status Engine::RunImpl(const Program& program) {
  VL_FAULT_POINT("engine.run");
  program_ = &program;
  stats_ = EngineStats{};
  published_ = EngineStats{};
  agg_states_.clear();
  // Pessimistically aborted until the chase completes, so an early return
  // on any path below leaves the engine in the "aborted" state.
  last_run_aborted_ = true;

  VL_RETURN_NOT_OK(Preflight(program));

  for (const Atom& fact : program.facts) {
    std::vector<Value> tuple;
    tuple.reserve(fact.args.size());
    for (const Term& t : fact.args) tuple.push_back(t.constant);
    VL_ASSIGN_OR_RETURN(bool inserted,
                        db_->Insert(fact.predicate, std::move(tuple)));
    (void)inserted;
  }

  VL_RETURN_NOT_OK(Prepare(program));
  VL_ASSIGN_OR_RETURN(Stratification strat,
                      Stratify(program, *db_->catalog()));
  stats_.strata = strat.strata.size();

  // Streaming chase setup: decide which predicates may shed exhausted
  // delta epochs and re-home their relations into paged storage.
  // Provenance pins every derived row (Explain reads them back), so
  // eviction stays off under trace_provenance.
  evictable_.clear();
  sink_outputs_.clear();
  pattern_memo_ = PatternMemo();
  if (options_.streaming && !options_.trace_provenance) {
    const size_t num_preds = db_->catalog()->predicates.size();
    const uint32_t goal_pred = options_.query_goal != nullptr
                                   ? options_.query_goal->atom.predicate
                                   : UINT32_MAX;
    evictable_ = ComputeEvictable(program, strat, num_preds,
                                  options_.evict_sink != nullptr, goal_pred);
    sink_outputs_.assign(num_preds, false);
    if (options_.evict_sink != nullptr) {
      for (uint32_t p : program.outputs) {
        if (p < num_preds) sink_outputs_[p] = evictable_[p];
      }
    }
    for (uint32_t p = 0; p < num_preds; ++p) {
      if (evictable_[p]) db_->SetStreaming(p);
    }
  }

  ScopedSpan span(options_.metrics, "chase", options_.run_ctx);
  for (const auto& stratum_rules : strat.strata) {
    if (!stratum_rules.empty()) {
      VL_FAULT_POINT("engine.stratum");
      VL_RETURN_NOT_OK(EvalStratum(stratum_rules, nullptr));
    }
  }
  last_run_sizes_ = RelationSizes();
  last_run_aborted_ = false;
  PublishChaseMetrics();
  return Status::OK();
}

Status Engine::RunIncrementalImpl(const Program& program) {
  program_ = &program;
  for (const Rule& rule : program.rules) {
    for (const Literal& lit : rule.body) {
      if (lit.kind == Literal::Kind::kNegatedAtom) {
        return Status::Unsupported(
            "RunIncremental does not support negation (new facts could "
            "invalidate earlier conclusions); use Run()");
      }
    }
  }

  VL_RETURN_NOT_OK(Preflight(program));

  for (const Atom& fact : program.facts) {
    std::vector<Value> tuple;
    tuple.reserve(fact.args.size());
    for (const Term& t : fact.args) tuple.push_back(t.constant);
    VL_ASSIGN_OR_RETURN(bool inserted,
                        db_->Insert(fact.predicate, std::move(tuple)));
    (void)inserted;
  }

  VL_RETURN_NOT_OK(Prepare(program));
  VL_ASSIGN_OR_RETURN(Stratification strat,
                      Stratify(program, *db_->catalog()));
  stats_.strata = strat.strata.size();
  // Continuations never evict: the incremental delta windows are anchored
  // at the previous run's sizes, not at this run's consumption frontier.
  evictable_.clear();
  sink_outputs_.clear();
  std::vector<size_t> window_start = last_run_sizes_;
  last_run_aborted_ = true;
  ScopedSpan span(options_.metrics, "chase", options_.run_ctx);
  for (const auto& stratum_rules : strat.strata) {
    if (!stratum_rules.empty()) {
      VL_RETURN_NOT_OK(EvalStratum(stratum_rules, &window_start));
    }
  }
  last_run_sizes_ = RelationSizes();
  last_run_aborted_ = false;
  PublishChaseMetrics();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

std::string Engine::Explain(uint32_t predicate,
                            const std::vector<Value>& tuple,
                            size_t max_depth) const {
  std::string out;
  const Catalog* cat = db_->catalog();

  auto render = [&](uint32_t pred, RowRef row) {
    std::string s = cat->predicates.Name(pred) + "(";
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) s += ", ";
      s += row[i].ToString(cat->symbols);
    }
    return s + ")";
  };

  struct Item {
    uint32_t pred;
    uint32_t idx;
    size_t depth;
  };
  const Relation* rel = static_cast<const Database*>(db_)->relation(predicate);
  if (rel == nullptr) return "(unknown predicate)\n";
  int64_t idx = rel->Find(tuple);
  if (idx < 0) return "(fact not present)\n";

  std::vector<Item> stack{{predicate, static_cast<uint32_t>(idx), 0}};
  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    const Relation* r =
        static_cast<const Database*>(db_)->relation(item.pred);
    out += std::string(item.depth * 2, ' ') +
           render(item.pred, r->Row(item.idx));
    uint64_t key =
        (static_cast<uint64_t>(item.pred) << 32) | item.idx;
    auto it = provenance_.find(key);
    if (it == provenance_.end()) {
      out += "  (asserted)\n";
      continue;
    }
    out += "  <- rule " + std::to_string(it->second.rule);
    if (program_ != nullptr && it->second.rule < program_->rules.size()) {
      out += " [line " +
             std::to_string(program_->rules[it->second.rule].span.line) + "]";
    }
    out += "\n";
    if (item.depth + 1 <= max_depth) {
      for (auto rit = it->second.premises.rbegin();
           rit != it->second.premises.rend(); ++rit) {
        stack.push_back({rit->first, rit->second, item.depth + 1});
      }
    }
  }
  return out;
}

}  // namespace vadalink::datalog
