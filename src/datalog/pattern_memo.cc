#include "datalog/pattern_memo.h"

namespace vadalink::datalog {

bool PatternMemo::SeenOrInsert(uint32_t rule_id,
                               const std::vector<Value>& frontier) {
  // Canonical renaming: nulls get dense ids in first-occurrence order, so
  // (a, _:n7, _:n7, _:n9) and (a, _:n2, _:n2, _:n5) collapse to the same
  // pattern while (a, _:n7, _:n9, _:n9) stays distinct.
  Key key;
  key.rule_id = rule_id;
  key.pattern = frontier;
  std::vector<std::pair<uint64_t, uint64_t>> renaming;  // original -> dense
  for (Value& v : key.pattern) {
    if (!v.is_null()) continue;
    uint64_t dense = renaming.size();
    for (const auto& [orig, mapped] : renaming) {
      if (orig == v.null_id()) {
        dense = mapped;
        break;
      }
    }
    if (dense == renaming.size()) renaming.emplace_back(v.null_id(), dense);
    v = Value::Null(dense);
  }
  return !patterns_.insert(std::move(key)).second;
}

}  // namespace vadalink::datalog
