#include "datalog/value.h"

#include "common/string_util.h"

namespace vadalink::datalog {

uint32_t SymbolTable::Intern(std::string_view s) {
  auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  names_.emplace_back(s);
  index_.emplace(names_.back(), id);
  return id;
}

uint32_t SymbolTable::Lookup(std::string_view s) const {
  auto it = index_.find(std::string(s));
  return it == index_.end() ? UINT32_MAX : it->second;
}

bool Value::operator<(const Value& o) const {
  if (kind_ != o.kind_) return kind_ < o.kind_;
  switch (kind_) {
    case Kind::kInt:
      return AsInt() < o.AsInt();
    case Kind::kDouble:
      return AsDouble() < o.AsDouble();
    default:
      return bits_ < o.bits_;
  }
}

std::string Value::ToString(const SymbolTable& symbols) const {
  switch (kind_) {
    case Kind::kNone:
      return "<none>";
    case Kind::kBool:
      return AsBool() ? "true" : "false";
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble:
      return FormatDouble(AsDouble());
    case Kind::kSymbol:
      return "\"" + symbols.Name(symbol_id()) + "\"";
    case Kind::kNull:
      return "_:n" + std::to_string(null_id());
    case Kind::kSkolem:
      return "#" + std::to_string(skolem_id());
  }
  return "?";
}

uint64_t HashValues(const Value* vals, size_t n) {
  uint64_t h = 0x51ab1efc35ULL;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, vals[i].Hash());
  return HashFinalize(h);
}

uint64_t HashValues2(const Value* vals, size_t n) {
  // Independent seed and per-element re-finalization keep this hash
  // uncorrelated with HashValues: a primary-hash collision gives no
  // information about a secondary-hash collision.
  uint64_t h = 0xc2b2ae3d27d4eb4fULL;
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, HashFinalize(vals[i].Hash() ^ 0x165667b19e3779f9ULL));
  }
  return HashFinalize(h);
}

uint64_t SkolemRegistry::Get(uint32_t tag_symbol,
                             const std::vector<Value>& args) {
  auto key = std::make_pair(tag_symbol, args);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  uint64_t id = entries_.size();
  entries_.push_back(Entry{tag_symbol, args});
  index_.emplace(std::move(key), id);
  return id;
}

const SkolemRegistry::Entry* SkolemRegistry::Find(uint64_t id) const {
  if (id >= entries_.size()) return nullptr;
  return &entries_[id];
}

uint64_t NullRegistry::Get(uint32_t rule_id, uint32_t var_index,
                           const std::vector<Value>& frontier) {
  Key key{rule_id, var_index, frontier};
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  uint64_t id = count_++;
  index_.emplace(std::move(key), id);
  return id;
}

}  // namespace vadalink::datalog
