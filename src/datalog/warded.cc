#include "datalog/warded.h"

#include <map>
#include <set>

namespace vadalink::datalog {

namespace {

using PosKey = std::pair<uint32_t, size_t>;  // (predicate, argument index)

/// Occurrences of each rule variable in positive body atoms.
struct VarOccurrences {
  std::vector<std::vector<PosKey>> positions;  // var -> body positions
  std::vector<std::vector<size_t>> atoms;      // var -> body literal index
};

VarOccurrences CollectBodyOccurrences(const Rule& rule) {
  VarOccurrences occ;
  occ.positions.resize(rule.var_names.size());
  occ.atoms.resize(rule.var_names.size());
  for (size_t li = 0; li < rule.body.size(); ++li) {
    const Literal& lit = rule.body[li];
    if (lit.kind != Literal::Kind::kAtom) continue;
    for (size_t a = 0; a < lit.atom.args.size(); ++a) {
      const Term& t = lit.atom.args[a];
      if (!t.is_var()) continue;
      occ.positions[t.var].push_back({lit.atom.predicate, a});
      occ.atoms[t.var].push_back(li);
    }
  }
  return occ;
}

/// Provenance of one affected position: the first witness wins, so later
/// fixpoint rounds never rewrite it.
struct Witness {
  uint32_t rule = 0;
  bool existential = false;
};

}  // namespace

const char* VarClassName(VarClass c) {
  switch (c) {
    case VarClass::kHarmless: return "harmless";
    case VarClass::kHarmful: return "harmful";
    case VarClass::kDangerous: return "dangerous";
  }
  return "?";
}

WardednessReport AnalyzeWardedness(const Program& program,
                                   const Catalog& /*cat*/) {
  WardednessReport report;

  // ---- fixpoint of affected positions -----------------------------------
  std::map<PosKey, Witness> affected;
  bool changed = true;
  while (changed) {
    changed = false;
    for (uint32_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      VarOccurrences occ = CollectBodyOccurrences(rule);
      std::vector<bool> body_bound = BodyBoundVars(rule);
      // A body variable is "nullable" if it occurs in body atoms and all
      // those occurrences are at affected positions.
      auto nullable = [&](uint32_t v) {
        if (occ.positions[v].empty()) return false;
        for (const PosKey& p : occ.positions[v]) {
          if (affected.count(p) == 0) return false;
        }
        return true;
      };
      for (const Atom& head : rule.head) {
        for (size_t a = 0; a < head.args.size(); ++a) {
          const Term& t = head.args[a];
          if (!t.is_var()) continue;
          bool existential = !body_bound[t.var];
          bool makes_affected = existential || nullable(t.var);
          if (makes_affected &&
              affected
                  .emplace(PosKey{head.predicate, a}, Witness{r, existential})
                  .second) {
            changed = true;
          }
        }
      }
    }
  }
  report.affected_positions.reserve(affected.size());
  report.affected_details.reserve(affected.size());
  for (const auto& [pos, witness] : affected) {
    report.affected_positions.push_back(pos);
    AffectedPosition ap;
    ap.predicate = pos.first;
    ap.position = pos.second;
    ap.witness_rule = witness.rule;
    ap.existential = witness.existential;
    report.affected_details.push_back(ap);
  }

  // ---- per-rule classification --------------------------------------------
  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    RuleReport rr;
    rr.rule_index = r;

    VarOccurrences occ = CollectBodyOccurrences(rule);
    std::vector<bool> in_head(rule.var_names.size(), false);
    for (const Atom& head : rule.head) {
      for (const Term& t : head.args) {
        if (t.is_var()) in_head[t.var] = true;
      }
    }

    // Harmless = occurs in at least one non-affected body position.
    // Harmful = occurs in body atoms only at affected positions.
    // Dangerous = harmful and propagated to the head.
    std::vector<uint32_t> dangerous;
    std::vector<bool> harmless(rule.var_names.size(), false);
    for (uint32_t v = 0; v < rule.var_names.size(); ++v) {
      if (occ.positions[v].empty()) continue;
      bool all_affected = true;
      for (const PosKey& p : occ.positions[v]) {
        if (affected.count(p) == 0) all_affected = false;
      }
      VarReport vr;
      vr.var = v;
      vr.name = rule.var_names[v];
      if (!all_affected) {
        harmless[v] = true;
        vr.cls = VarClass::kHarmless;
      } else if (in_head[v]) {
        dangerous.push_back(v);
        vr.cls = VarClass::kDangerous;
      } else {
        vr.cls = VarClass::kHarmful;
      }
      rr.body_vars.push_back(std::move(vr));
    }

    if (dangerous.empty()) {
      rr.safety = RuleSafety::kDatalog;
      report.rules.push_back(std::move(rr));
      continue;
    }
    for (uint32_t v : dangerous) {
      rr.dangerous_vars.push_back(rule.var_names[v]);
    }

    // All dangerous variables must share one body atom (the ward).
    std::set<size_t> candidate_wards(occ.atoms[dangerous[0]].begin(),
                                     occ.atoms[dangerous[0]].end());
    bool no_shared_ward = false;
    for (size_t i = 1; i < dangerous.size() && !no_shared_ward; ++i) {
      std::set<size_t> next;
      for (size_t li : occ.atoms[dangerous[i]]) {
        if (candidate_wards.count(li) > 0) next.insert(li);
      }
      if (next.empty()) {
        // This variable's atoms are disjoint from the surviving candidate
        // wards: its first occurrence is the atom breaking the condition.
        no_shared_ward = true;
        rr.violating_literal =
            static_cast<uint32_t>(occ.atoms[dangerous[i]][0]);
        rr.violating_var = rule.var_names[dangerous[i]];
        const SourceSpan& atom_span =
            rule.body[rr.violating_literal].atom.span;
        rr.violating_span = atom_span.known() ? atom_span : rule.span;
      }
      candidate_wards = std::move(next);
    }
    if (no_shared_ward) {
      rr.safety = RuleSafety::kNotWarded;
      rr.violation = "dangerous variables do not share a body atom";
      rr.violation_kind = WardViolation::kNoSharedWard;
      report.warded = false;
      report.rules.push_back(std::move(rr));
      continue;
    }

    // The ward may share only harmless variables with the rest of the body.
    bool some_ward_ok = false;
    std::string last_violation;
    uint32_t last_violating_literal = UINT32_MAX;
    std::string last_violating_var;
    for (size_t ward : candidate_wards) {
      bool ok = true;
      const Atom& ward_atom = rule.body[ward].atom;
      for (const Term& t : ward_atom.args) {
        if (!t.is_var() || harmless[t.var]) continue;
        // Shared with another body atom?
        for (size_t li : occ.atoms[t.var]) {
          if (li != ward) {
            ok = false;
            last_violation = "ward shares harmful variable " +
                             rule.var_names[t.var] +
                             " with another body atom";
            last_violating_literal = static_cast<uint32_t>(li);
            last_violating_var = rule.var_names[t.var];
          }
        }
      }
      if (ok) {
        some_ward_ok = true;
        break;
      }
    }
    if (some_ward_ok) {
      rr.safety = RuleSafety::kWarded;
    } else {
      rr.safety = RuleSafety::kNotWarded;
      rr.violation = last_violation;
      rr.violation_kind = WardViolation::kWardSharesHarmful;
      rr.violating_literal = last_violating_literal;
      rr.violating_var = last_violating_var;
      if (last_violating_literal != UINT32_MAX) {
        const SourceSpan& atom_span =
            rule.body[last_violating_literal].atom.span;
        rr.violating_span = atom_span.known() ? atom_span : rule.span;
      }
      report.warded = false;
    }
    report.rules.push_back(std::move(rr));
  }
  return report;
}

std::string WardednessReport::ToString(const Catalog& cat,
                                       const Program& program) const {
  std::string out = warded ? "program is WARDED\n" : "program is NOT warded\n";
  out += "affected positions:";
  if (affected_positions.empty()) out += " (none)";
  for (const auto& [pred, pos] : affected_positions) {
    out += " " + cat.predicates.Name(pred) + "[" + std::to_string(pos) + "]";
  }
  out += "\n";
  for (const RuleReport& rr : rules) {
    out += "  rule " + std::to_string(rr.rule_index) + ": ";
    switch (rr.safety) {
      case RuleSafety::kDatalog:
        out += "datalog";
        break;
      case RuleSafety::kWarded:
        out += "warded (dangerous:";
        for (const auto& v : rr.dangerous_vars) out += " " + v;
        out += ")";
        break;
      case RuleSafety::kNotWarded:
        out += "NOT WARDED — " + rr.violation;
        if (rr.violating_literal != UINT32_MAX &&
            rr.rule_index < program.rules.size()) {
          const Rule& rule = program.rules[rr.rule_index];
          if (rr.violating_literal < rule.body.size()) {
            out += " (at " +
                   LiteralToString(rule.body[rr.violating_literal], rule,
                                   cat) +
                   ")";
          }
        }
        break;
    }
    if (rr.rule_index < program.rules.size()) {
      out += "   [" + RuleToString(program.rules[rr.rule_index], cat) + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace vadalink::datalog
