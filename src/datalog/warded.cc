#include "datalog/warded.h"

#include <set>

namespace vadalink::datalog {

namespace {

using PosKey = std::pair<uint32_t, size_t>;  // (predicate, argument index)

/// Occurrences of each rule variable in positive body atoms.
struct VarOccurrences {
  std::vector<std::vector<PosKey>> positions;  // var -> body positions
  std::vector<std::vector<size_t>> atoms;      // var -> body literal index
};

VarOccurrences CollectBodyOccurrences(const Rule& rule) {
  VarOccurrences occ;
  occ.positions.resize(rule.var_names.size());
  occ.atoms.resize(rule.var_names.size());
  for (size_t li = 0; li < rule.body.size(); ++li) {
    const Literal& lit = rule.body[li];
    if (lit.kind != Literal::Kind::kAtom) continue;
    for (size_t a = 0; a < lit.atom.args.size(); ++a) {
      const Term& t = lit.atom.args[a];
      if (!t.is_var()) continue;
      occ.positions[t.var].push_back({lit.atom.predicate, a});
      occ.atoms[t.var].push_back(li);
    }
  }
  return occ;
}

}  // namespace

WardednessReport AnalyzeWardedness(const Program& program,
                                   const Catalog& cat) {
  WardednessReport report;

  // ---- fixpoint of affected positions -----------------------------------
  std::set<PosKey> affected;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Rule& rule : program.rules) {
      VarOccurrences occ = CollectBodyOccurrences(rule);
      std::vector<bool> body_bound = BodyBoundVars(rule);
      // A body variable is "nullable" if it occurs in body atoms and all
      // those occurrences are at affected positions.
      auto nullable = [&](uint32_t v) {
        if (occ.positions[v].empty()) return false;
        for (const PosKey& p : occ.positions[v]) {
          if (!affected.count(p)) return false;
        }
        return true;
      };
      for (const Atom& head : rule.head) {
        for (size_t a = 0; a < head.args.size(); ++a) {
          const Term& t = head.args[a];
          if (!t.is_var()) continue;
          bool makes_affected =
              !body_bound[t.var] /* existential */ || nullable(t.var);
          if (makes_affected &&
              affected.insert({head.predicate, a}).second) {
            changed = true;
          }
        }
      }
    }
  }
  report.affected_positions.assign(affected.begin(), affected.end());

  // ---- per-rule classification --------------------------------------------
  for (uint32_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    RuleReport rr;
    rr.rule_index = r;

    VarOccurrences occ = CollectBodyOccurrences(rule);
    std::vector<bool> in_head(rule.var_names.size(), false);
    for (const Atom& head : rule.head) {
      for (const Term& t : head.args) {
        if (t.is_var()) in_head[t.var] = true;
      }
    }

    // Harmful = occurs in body atoms only at affected positions.
    // Dangerous = harmful and propagated to the head.
    std::vector<uint32_t> dangerous;
    std::vector<bool> harmless(rule.var_names.size(), false);
    for (uint32_t v = 0; v < rule.var_names.size(); ++v) {
      if (occ.positions[v].empty()) continue;
      bool all_affected = true;
      for (const PosKey& p : occ.positions[v]) {
        if (!affected.count(p)) all_affected = false;
      }
      if (!all_affected) {
        harmless[v] = true;
      } else if (in_head[v]) {
        dangerous.push_back(v);
      }
    }

    if (dangerous.empty()) {
      rr.safety = RuleSafety::kDatalog;
      report.rules.push_back(std::move(rr));
      continue;
    }
    for (uint32_t v : dangerous) {
      rr.dangerous_vars.push_back(rule.var_names[v]);
    }

    // All dangerous variables must share one body atom (the ward).
    std::set<size_t> candidate_wards(occ.atoms[dangerous[0]].begin(),
                                     occ.atoms[dangerous[0]].end());
    for (size_t i = 1; i < dangerous.size(); ++i) {
      std::set<size_t> next;
      for (size_t li : occ.atoms[dangerous[i]]) {
        if (candidate_wards.count(li)) next.insert(li);
      }
      candidate_wards = std::move(next);
    }
    if (candidate_wards.empty()) {
      rr.safety = RuleSafety::kNotWarded;
      rr.violation = "dangerous variables do not share a body atom";
      report.warded = false;
      report.rules.push_back(std::move(rr));
      continue;
    }

    // The ward may share only harmless variables with the rest of the body.
    bool some_ward_ok = false;
    std::string last_violation;
    for (size_t ward : candidate_wards) {
      bool ok = true;
      const Atom& ward_atom = rule.body[ward].atom;
      for (const Term& t : ward_atom.args) {
        if (!t.is_var() || harmless[t.var]) continue;
        // Shared with another body atom?
        for (size_t li : occ.atoms[t.var]) {
          if (li != ward) {
            ok = false;
            last_violation = "ward shares harmful variable " +
                             rule.var_names[t.var] +
                             " with another body atom";
          }
        }
      }
      if (ok) {
        some_ward_ok = true;
        break;
      }
    }
    if (some_ward_ok) {
      rr.safety = RuleSafety::kWarded;
    } else {
      rr.safety = RuleSafety::kNotWarded;
      rr.violation = last_violation;
      report.warded = false;
    }
    report.rules.push_back(std::move(rr));
  }
  return report;
}

std::string WardednessReport::ToString(const Catalog& cat,
                                       const Program& program) const {
  std::string out = warded ? "program is WARDED\n" : "program is NOT warded\n";
  out += "affected positions:";
  if (affected_positions.empty()) out += " (none)";
  for (const auto& [pred, pos] : affected_positions) {
    out += " " + cat.predicates.Name(pred) + "[" + std::to_string(pos) + "]";
  }
  out += "\n";
  for (const RuleReport& rr : rules) {
    out += "  rule " + std::to_string(rr.rule_index) + ": ";
    switch (rr.safety) {
      case RuleSafety::kDatalog:
        out += "datalog";
        break;
      case RuleSafety::kWarded:
        out += "warded (dangerous:";
        for (const auto& v : rr.dangerous_vars) out += " " + v;
        out += ")";
        break;
      case RuleSafety::kNotWarded:
        out += "NOT WARDED — " + rr.violation;
        break;
    }
    if (rr.rule_index < program.rules.size()) {
      out += "   [" + RuleToString(program.rules[rr.rule_index], cat) + "]";
    }
    out += "\n";
  }
  return out;
}

}  // namespace vadalink::datalog
