// The reasoning engine: a semi-naive, stratified chase for existential
// rules with Skolem functions and monotonic aggregation — the fragment of
// Vadalog the paper's Algorithms 2-9 are written in.
//
// Design notes:
//  * Existential head variables are satisfied with labeled nulls memoised
//    on (rule, variable, frontier) — i.e. the Skolem chase — so re-firing a
//    rule on the same frontier reuses its nulls and recursion terminates
//    whenever the Skolem chase does (all warded programs in this codebase).
//  * Monotonic aggregates keep per-(rule, group) running state; a body
//    match contributes at most once per distinct contributor-variable
//    binding, and each contribution emits the updated running value
//    (Section 4 of the paper: "subsequent invocations yield updated values
//    ... the final value is the minimum/maximum value").
//  * Semi-naive deltas are index ranges over the append-only relations.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/run_context.h"
#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/builtins.h"
#include "datalog/database.h"
#include "datalog/magic.h"
#include "datalog/pattern_memo.h"
#include "datalog/stratify.h"

namespace vadalink::datalog {

/// Join-order policy of the per-rule planner.
enum class JoinOrder {
  /// Order body atoms by estimated selectivity (relation size over the
  /// probe column's distinct count), anchoring the delta atom first in
  /// semi-naive rounds. The default.
  kPlanned,
  /// Deliberately order atoms by *descending* cost — the worst plan the
  /// planner could produce. Exists for benchmarks and the property test
  /// that pins join-order invariance of the final fact set.
  kWorstCase,
};

struct EngineOptions {
  /// Abort if one stratum runs more than this many fixpoint iterations.
  size_t max_iterations = 1000000;
  /// Abort once the database holds more than this many facts.
  size_t max_facts = 50000000;
  /// Record one derivation per fact for Explain().
  bool trace_provenance = false;
  /// Optional run governor: deadline / work budget / cancellation, polled
  /// inside the match loops and charged one work unit per derived fact.
  /// nullptr = unlimited. Must outlive the engine calls that use it.
  const RunContext* run_ctx = nullptr;
  /// Optional thread pool for per-rule delta-join evaluation (not owned;
  /// must outlive the engine calls that use it). Eligible rules (no
  /// aggregates, no existential variables, no function calls, leading
  /// positive atom) match against a read-only database snapshot in
  /// parallel and their head facts are merged single-threaded in chunk
  /// order, preserving deterministic semi-naive semantics: the final fact
  /// set is identical at every thread count. nullptr or a 1-thread pool
  /// keeps the fully sequential evaluator.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (not owned; must outlive the engine calls that
  /// use it). Run() publishes engine.* counters from EngineStats at the
  /// end of each call (deterministic totals) and records the per-iteration
  /// semi-naive delta size into the engine.delta.size histogram. nullptr =
  /// no recording.
  MetricsRegistry* metrics = nullptr;
  /// Run the static analyzer (datalog/analysis) before evaluating. Any
  /// analyzer *error* (safety, wardedness, stratification, arity) fails
  /// the call with kInvalidArgument carrying the rendered diagnostics;
  /// warnings are published to metrics ("analysis.warnings" plus one
  /// "analysis.diag.<code>" counter per diagnostic code) and do not block
  /// evaluation.
  bool preflight = true;
  /// Join-order policy (see JoinOrder). Only rules without aggregates and
  /// without existential variables are reordered — for those the match
  /// enumeration order is semantically visible (running aggregate values,
  /// labeled-null identity), so they always evaluate in compiled order.
  JoinOrder join_order = JoinOrder::kPlanned;
  /// Non-null routes Run() through Query(): the program is magic-set
  /// rewritten for this goal (see datalog/magic.h) before evaluation, so
  /// the chase derives only goal-relevant facts. Not owned; must outlive
  /// the engine calls that use it.
  const QueryGoal* query_goal = nullptr;
  /// Cost admission for Query(): > 0 rejects a goal with
  /// kResourceExhausted *before* evaluation when the static cost estimate
  /// of the (rewritten) program exceeds this bound. The error message
  /// names the estimate and the bound, so callers (serve admission) can
  /// surface it. 0 = no cost gate.
  double max_query_cost = 0.0;
  /// Space-bounded streaming chase (DESIGN.md section 13). Run() releases
  /// the column storage of exhausted semi-naive delta epochs for every
  /// predicate the evictability analysis accepts (read only through its
  /// own delta window), and memoizes labeled-null frontier patterns up to
  /// null renaming so isomorphic re-firings of existential rules are
  /// skipped. The final fact set over resident + sunk rows is identical
  /// to a non-streaming run at every thread count (the memo engages only
  /// on null-carrying frontiers, which ground-frontier programs never
  /// produce). Incompatible with trace_provenance (eviction silently
  /// stays off) and with RunIncremental continuation (rejected with
  /// kFailedPrecondition once anything was evicted).
  bool streaming = false;
  /// Streaming only: rows of @output predicates are handed here right
  /// before their storage is released, making outputs evictable too.
  /// Without a sink, output predicates always stay resident. Called
  /// single-threaded, in row order, during Run().
  std::function<void(uint32_t predicate, const Value* vals, size_t n)>
      evict_sink;
};

/// Outcome of one Engine::Query call.
struct QueryReport {
  /// True when the demand transformation applied; false when the engine
  /// saturated the (relevance-pruned) dependency cone of the goal instead.
  bool rewritten = false;
  /// Why the demand transformation was not applicable (see magic.h);
  /// empty when `rewritten`, and also for all-free goals, which have no
  /// bound position to push demand from. Never silently dropped: a
  /// non-empty reason is surfaced here and counted in
  /// "engine.query.fallbacks" plus one "engine.query.fallback.<code>"
  /// counter keyed by the stable slug below.
  std::string fallback_reason;
  /// Stable slug for fallback_reason (see MagicResult::fallback_code);
  /// empty exactly when fallback_reason is.
  std::string fallback_code;
  /// Input rules dropped by the goal-directed dataflow analysis.
  size_t rules_pruned = 0;
  /// Demand (magic + adornment-bridge) rules added by the rewrite.
  size_t magic_rules = 0;
  /// Distinct (predicate, adornment) demands processed.
  size_t adornments = 0;
  /// Facts the (rewritten) chase derived — the query-focus work measure.
  size_t facts_derived = 0;
  /// Static cost estimate (analysis/cost.h program_cost) of the program
  /// the chase actually ran — the rewritten program when `rewritten`,
  /// the pruned source program otherwise. Compared against
  /// EngineOptions::max_query_cost for admission and exported to bench
  /// output as the estimated-vs-actual ratio numerator.
  double estimated_cost = 0.0;
  /// Wall-clock microseconds spent before evaluation started: preflight,
  /// dataflow analysis, magic rewrite and cost estimation. Mirrored into
  /// the "engine.query.plan_us" counter.
  uint64_t plan_us = 0;
  /// Goal-matching tuples of the goal predicate, sorted. Exactly equal to
  /// the goal-matching subset of the full-saturation fact set.
  std::vector<std::vector<Value>> answers;
};

struct EngineStats {
  size_t strata = 0;
  size_t iterations = 0;
  size_t body_matches = 0;
  size_t facts_derived = 0;
  size_t nulls_invented = 0;
  /// Index probes issued by the join loops (plan quality signal).
  size_t join_probes = 0;
  /// Join plans built / served from the per-(rule, delta) cache.
  size_t plans_computed = 0;
  size_t plan_cache_hits = 0;
  /// Streaming chase (EngineOptions::streaming): high-water mark of
  /// Database::ResidentFacts() across the run, rows whose column storage
  /// was released, and pattern-memo traffic (EmitHead consultations /
  /// suppressed isomorphic re-firings).
  size_t peak_resident_facts = 0;
  size_t evicted_rows = 0;
  size_t memo_queries = 0;
  size_t memo_hits = 0;
  /// Join-plan atom orderings decided from the static cost analysis's
  /// cardinality interval because the relation was still cold (no rows,
  /// no index statistics). Mirrored into "engine.cost.priors_used".
  size_t cost_priors_used = 0;
};

class Engine {
 public:
  explicit Engine(Database* db, EngineOptions options = {});

  /// Function table used for '#name(...)' calls. The standard library is
  /// pre-registered; domain modules may add more before Run().
  FunctionRegistry* functions() { return &functions_; }

  /// Evaluates `program` to fixpoint over the engine's database. Facts in
  /// the program are asserted first. Idempotent w.r.t. already present
  /// facts. Aggregate state is reset at the start of each call.
  ///
  /// With EngineOptions::streaming, exhausted delta epochs of evictable
  /// predicates are released as the chase progresses; the final answer
  /// set (output predicates, query answers) is unchanged, but evicted
  /// rows are no longer resident afterwards and a later RunIncremental
  /// on the same database is rejected with kFailedPrecondition.
  ///
  /// Error codes:
  ///  * kInvalidArgument — the static-analysis pre-flight found an error
  ///    (unsafe rule, wardedness violation, negation through recursion,
  ///    arity conflict; see datalog/analysis), a rule cannot be ordered
  ///    for evaluation, an unknown '#function' is referenced, or a runtime
  ///    arity mismatch is detected;
  ///  * kResourceExhausted — max_iterations or max_facts exceeded, or the
  ///    RunContext work budget ran out;
  ///  * kDeadlineExceeded — the RunContext wall-clock deadline expired;
  ///  * kCancelled — RunContext::RequestCancel() was observed.
  Status Run(const Program& program);

  /// Goal-directed evaluation: magic-set rewrites `program` for `goal`
  /// (datalog/magic.h) and chases the rewritten program, deriving only
  /// goal-relevant facts — the join planner, plan cache and parallel
  /// partitioned joins apply to the rewritten rules unchanged. Returns the
  /// sorted goal-matching answers plus rewrite statistics; when the
  /// rewrite is not applicable the report carries the fallback reason and
  /// the engine saturates the goal's relevance-pruned dependency cone
  /// instead (still exact, never silent). The static-analysis pre-flight
  /// runs against the *source* program — the synthesized __magic_*
  /// predicates are safe by construction but outside the analyzer's
  /// warded fragment. Error codes are those of Run().
  Result<QueryReport> Query(const Program& program, const QueryGoal& goal);

  /// Incremental continuation after a completed Run() of the same program:
  /// only facts inserted into the database since that run are treated as
  /// deltas (the initial naive pass is skipped), and aggregate state, null
  /// memoisation and provenance carry over. Sound because the engine's
  /// fragment without negation is monotonic; programs using negation are
  /// rejected (a new fact could invalidate earlier conclusions). Also
  /// rejected after an aborted run (deadline / budget / cancellation): the
  /// delta window is then unreliable, so callers must re-establish the
  /// fixpoint with Run() — which is sound, because every fact an aborted
  /// chase derived is a genuine consequence.
  ///
  /// Error codes (in addition to everything Run() can return):
  ///  * kInvalidArgument — the previous run aborted (deadline / budget /
  ///    cancellation), so the delta window is unreliable;
  ///  * kUnsupported — the program uses negation, which is not monotonic
  ///    under fact insertion;
  ///  * kFailedPrecondition — the streaming chase evicted facts from this
  ///    database: a continuation would need to join against column data
  ///    that no longer exists. Re-run with streaming off (fresh database)
  ///    to regain incremental continuation.
  Status RunIncremental(const Program& program);

  const EngineStats& stats() const { return stats_; }

  /// Re-points the run governor / metrics sink for the next call. A
  /// resident engine (the serving layer) runs many RunIncremental calls,
  /// each under its own per-request RunContext; constructor options alone
  /// cannot express that.
  void set_run_ctx(const RunContext* run_ctx) { options_.run_ctx = run_ctx; }
  void set_metrics(MetricsRegistry* metrics) { options_.metrics = metrics; }

  /// Status of the limit trip (deadline / budget / cancellation) or error
  /// that aborted the last Run()/RunIncremental(); OK when the last run
  /// completed. RunIncremental's rejection message after an aborted run
  /// names this status.
  const Status& last_abort_status() const { return last_abort_status_; }

  /// Provenance: a one-derivation explanation tree for a fact (requires
  /// options.trace_provenance). Facts without a recorded derivation print
  /// as "(asserted)".
  std::string Explain(uint32_t predicate, const std::vector<Value>& tuple,
                      size_t max_depth = 6) const;

  /// Human-readable descriptions of every join plan built during the last
  /// Run/RunIncremental, sorted by (rule, delta occurrence). One line per
  /// cached plan, e.g. "rule 1 delta tc: tc[delta] e@0". For benchmarks
  /// and diagnostics.
  std::vector<std::string> PlanSummaries() const;

 private:
  /// A rule with its body reordered for evaluability plus the metadata the
  /// evaluator needs (positive atom positions, frontier, aggregate info).
  struct CompiledRule {
    Rule rule;
    uint32_t id = 0;
    std::vector<size_t> positive_atoms;
    std::vector<uint32_t> frontier_vars;
    std::vector<uint32_t> existential_vars;
    bool has_agg = false;
    size_t agg_pos = 0;
    std::vector<uint32_t> agg_group_vars;
    /// True when the planner may reorder this rule's atoms: no aggregate
    /// (running values are enumeration-order-sensitive) and no
    /// existential variables (null ids are assigned in enumeration
    /// order). Non-reorderable rules keep compiled literal order; the
    /// planner still picks probe columns for them.
    bool reorderable = false;
    /// True when the rule's match phase is pure w.r.t. engine and database
    /// state and may fan out over a thread pool: no aggregate, no
    /// existential variables (null invention mutates the registry), no
    /// '#function' calls (they may intern symbols), and a positive atom
    /// to anchor the plan on and chunk over.
    bool parallel_ok = false;
    /// Streaming only: the rule invents nulls and its frontier admits
    /// nulls (analysis/harmful.h), so EmitHead consults the pattern memo
    /// before firing on a null-carrying frontier.
    bool memo_eligible = false;
  };

  /// One complete body match captured by the parallel collect phase:
  /// fully evaluated head tuples (aligned with rule.head) plus premises.
  struct CollectedMatch {
    std::vector<std::vector<Value>> head_tuples;
    std::vector<std::pair<uint32_t, uint32_t>> premises;
  };

  /// Compiled per-column action of an atom step. Boundness at every plan
  /// position is static (the planner knows which variables earlier steps
  /// bound), so the match loop needs no runtime bound-set: each column
  /// either binds a fresh variable or checks against a bound one / a
  /// constant.
  struct ArgOp {
    /// kSkip marks the probe column: every row of a posting list already
    /// matches the probe value exactly, so rechecking it is redundant.
    enum class Kind : uint8_t { kCheckConst, kCheckVar, kBindVar, kSkip };
    Kind kind = Kind::kBindVar;
    uint32_t var = 0;  // kCheckVar / kBindVar
    Value constant;    // kCheckConst
  };

  /// One literal of a join plan, in execution order.
  struct PlanStep {
    uint32_t lit = 0;    // index into CompiledRule::rule.body
    int probe_arg = -1;  // atoms: argument position to probe, -1 = scan
    bool is_delta = false;  // atom bound to the semi-naive delta window
    bool probe_is_var = false;  // probe value: subst[probe_var] or constant
    uint32_t probe_var = 0;
    Value probe_const;
    /// Posting lists of this atom may be iterated in place even while
    /// inserting: the probed predicate is not among the rule's head
    /// predicates, so no insert below this step can touch its index.
    bool probe_in_place = false;
    /// Assignments: target variable already bound by an earlier step
    /// (turns the assignment into an equality filter).
    bool target_prebound = false;
    std::vector<ArgOp> args;  // atoms: one action per column
  };

  /// The execution plan of one (rule, delta occurrence) pair: a
  /// permutation of the body literals with a probe column per atom,
  /// chosen from relation statistics at first use and cached for the
  /// rest of the run.
  struct JoinPlan {
    std::vector<PlanStep> steps;
    /// (predicate, argument position) the non-anchor atoms probe;
    /// pre-warmed before the parallel match phase so Probe is a pure
    /// read from the workers.
    std::vector<std::pair<uint32_t, uint32_t>> warm_probes;
    std::string desc;  // human-readable summary (PlanSummaries)
  };

  /// Per-evaluation scratch threaded through the match recursion: the
  /// substitution, per-depth candidate buffers (reused, so the steady
  /// state allocates nothing) and deferred-mutation state of the
  /// parallel collect phase.
  struct MatchCtx {
    /// The substitution. There is no companion bound-set: boundness is
    /// static per plan position (encoded in the ArgOps), and stale
    /// entries are always overwritten by a later bind before any read.
    std::vector<Value> subst;
    std::vector<std::pair<uint32_t, uint32_t>> premises;
    bool track_premises = false;
    bool inserted_any = false;
    /// Non-null in the parallel collect phase: capture matches, defer
    /// every mutation. Also marks the database read-only, letting atom
    /// steps iterate posting lists in place instead of copying them.
    std::vector<CollectedMatch>* collect = nullptr;
    std::vector<std::vector<uint32_t>> cand;     // per-step candidate ids
    std::vector<Value> tuple_scratch;            // head/negation buffer
    uint64_t probes = 0;                         // local, merged to stats_
  };

  struct VecValueHash {
    size_t operator()(const std::vector<Value>& v) const {
      return HashValues(v);
    }
  };

  /// Running state of one monotonic aggregate group.
  struct AggState {
    std::unordered_set<std::vector<Value>, VecValueHash> contributors;
    bool initialized = false;
    bool all_int = true;
    double dval = 0.0;
    int64_t ival = 0;
    Value best;
    int64_t count = 0;

    Value Current(AggKind kind) const;
  };

  /// Mandatory static-analysis gate for Run/RunIncremental (unless
  /// options_.preflight is off): errors -> kInvalidArgument with rendered
  /// diagnostics, warnings -> metrics counters.
  Status Preflight(const Program& program);

  /// Bodies of Run/RunIncremental; the public wrappers capture a failing
  /// status into last_abort_status_.
  Status RunImpl(const Program& program);
  Status RunIncrementalImpl(const Program& program);

  Status Prepare(const Program& program);
  /// initial_before: per-predicate fact counts marking the start of the
  /// delta window; nullptr = full naive pass first.
  Status EvalStratum(const std::vector<uint32_t>& rule_ids,
                     const std::vector<size_t>* initial_before);
  std::vector<size_t> RelationSizes() const;

  /// Publishes the engine.* counters from stats_ into options_.metrics
  /// (no-op without a registry). RunIncremental keeps accumulating stats_
  /// on top of the preceding Run, so only the delta since the last publish
  /// is added — registry totals stay exact across mixed call sequences.
  void PublishChaseMetrics();

  /// The cached plan for (rule, delta occurrence), built on first use
  /// from the relation statistics current at that moment.
  const JoinPlan& PlanFor(const CompiledRule& rule, int delta_occurrence);
  JoinPlan BuildPlan(const CompiledRule& rule, int delta_occurrence);

  Status EvalRule(CompiledRule& rule, int delta_occurrence,
                  const std::vector<std::pair<size_t, size_t>>& deltas);
  /// Parallel delta join for a parallel_ok rule: chunks the plan's anchor
  /// atom candidates over options_.pool, each chunk matching read-only
  /// into CollectedMatch lists, then commits every match sequentially in
  /// chunk order (insert, stats, provenance, work charge, fact limit).
  /// Head facts surface one iteration later than with EvalRule (deferred
  /// inserts cannot re-feed the same pass), which is sound for the
  /// semi-naive fixpoint and leaves the final fact set identical.
  Status ParallelEvalRule(CompiledRule& rule, int delta_occurrence,
                          const std::vector<std::pair<size_t, size_t>>& deltas);
  /// Sequential commit of one collected match; mirrors EmitHead sans null
  /// invention (excluded by parallel_ok).
  Status CommitMatch(CompiledRule& rule, const CollectedMatch& match);
  Status MatchFrom(CompiledRule& rule, const JoinPlan& plan, size_t step,
                   const std::vector<std::pair<size_t, size_t>>& deltas,
                   MatchCtx* ctx);
  Status EmitHead(CompiledRule& rule, MatchCtx* ctx);
  Result<Value> Eval(const Expr& e, const CompiledRule& rule,
                     const std::vector<Value>& subst);
  Result<bool> EvalComparison(const Literal& lit, const CompiledRule& rule,
                              const std::vector<Value>& subst);

  Database* db_;
  EngineOptions options_;
  FunctionRegistry functions_;
  EngineStats stats_;
  /// stats_ values already mirrored into options_.metrics (see
  /// PublishChaseMetrics).
  EngineStats published_;

  std::vector<CompiledRule> compiled_;
  /// Streaming chase state (empty / unused unless options_.streaming).
  /// evictable_[p] — the evictability analysis accepted predicate p, so
  /// EvalStratum releases its exhausted delta epochs; sink_outputs_[p] —
  /// p is an @output streamed through options_.evict_sink on eviction.
  std::vector<bool> evictable_;
  std::vector<bool> sink_outputs_;
  PatternMemo pattern_memo_;
  // (rule id << 16 | delta occurrence + 1) -> cached join plan; cleared
  // by Prepare() at the start of each run.
  std::unordered_map<uint64_t, JoinPlan> plan_cache_;
  // Static cardinality priors (analysis/cost.h hi bounds, indexed by
  // predicate id) computed by Prepare(); BuildPlan falls back to them for
  // relations with no rows yet. Empty when the analysis found nothing.
  std::vector<double> cost_prior_hi_;
  // Program-level static cost estimate of the last Prepare()d program;
  // published as the "engine.cost.program_estimate" gauge.
  double program_cost_estimate_ = 0.0;
  // function id (catalog) -> resolved callable
  std::vector<const ExternalFn*> resolved_fns_;

  // Aggregate state, reset per Run(): (rule, group key) -> running state.
  struct AggKey {
    uint32_t rule;
    std::vector<Value> group;
    bool operator==(const AggKey& o) const {
      return rule == o.rule && group == o.group;
    }
  };
  struct AggKeyHash {
    size_t operator()(const AggKey& k) const {
      return HashCombine(k.rule, HashValues(k.group));
    }
  };
  std::unordered_map<AggKey, AggState, AggKeyHash> agg_states_;

  // Provenance: (pred, tuple idx) -> derivation.
  struct Derivation {
    uint32_t rule;
    std::vector<std::pair<uint32_t, uint32_t>> premises;
  };
  std::unordered_map<uint64_t, Derivation> provenance_;

  // Per-predicate fact counts at the end of the last (incremental) run,
  // marking the delta window start for RunIncremental.
  std::vector<size_t> last_run_sizes_;
  // True while a run is in flight and after one aborted; RunIncremental
  // refuses to continue from an aborted run.
  bool last_run_aborted_ = false;
  // Rewritten program of the last Query(): program_ points into it, so it
  // must outlive the run (Explain/PlanSummaries read through program_).
  std::unique_ptr<Program> query_program_;
  // Why the last run aborted (OK after a completed run); see
  // last_abort_status().
  Status last_abort_status_;

  const Program* program_ = nullptr;
};

}  // namespace vadalink::datalog
