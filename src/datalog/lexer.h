// Tokenizer for the Vadalog-like concrete syntax.
//
// Conventions (Prolog-style): identifiers starting with an upper-case letter
// or '_' are variables; lower-case identifiers are symbol constants or
// predicate names; '#name(...)' invokes a registered function; '%' and '//'
// start line comments.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vadalink::datalog {

enum class TokenType : uint8_t {
  kIdent,      // lower-case identifier
  kVariable,   // upper-case / underscore identifier
  kInt,
  kDouble,
  kString,     // double-quoted
  kLParen,
  kRParen,
  kComma,
  kDot,
  kArrow,      // ->
  kEq,         // =
  kEqEq,       // ==
  kNe,         // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kHash,       // #
  kAt,         // @
  kEof,
};

const char* TokenTypeName(TokenType t);

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;     // identifier / string payload
  int64_t int_value = 0;
  double double_value = 0.0;
  uint32_t line = 0;    // 1-based line of the token's first character
  uint32_t col = 0;     // 1-based column of the token's first character
};

/// Tokenizes a full program source. Returns ParseError with line/column
/// info on malformed input (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace vadalink::datalog
