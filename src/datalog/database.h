// Fact storage for the Datalog± engine.
//
// Tuples are append-only with stable dense indices, which lets the engine
// express semi-naive deltas as index ranges instead of separate delta
// relations. Per-argument hash indexes are built lazily and maintained
// incrementally as tuples are appended.
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/value.h"

namespace vadalink::datalog {

/// All facts of one predicate.
class Relation {
 public:
  /// Appends a tuple if not already present; returns true if it was new.
  bool Insert(std::vector<Value> tuple);

  size_t size() const { return tuples_.size(); }
  const std::vector<Value>& tuple(size_t i) const { return tuples_[i]; }

  /// Arity fixed by the first inserted tuple; SIZE_MAX while empty.
  size_t arity() const { return arity_; }

  /// True if the exact tuple is present.
  bool Contains(const std::vector<Value>& tuple) const;

  /// Index of the exact tuple, or -1 if absent.
  int64_t Find(const std::vector<Value>& tuple) const;

  /// Indices of tuples whose argument `pos` equals `v` (lazily indexed).
  /// The returned pointer is invalidated by the next Insert. May be null
  /// (no matches).
  ///
  /// Probe lazily (re)builds the index, so concurrent Probes race unless
  /// the index is already current — parallel read-only consumers must call
  /// WarmIndex(pos) for every position they will probe first.
  const std::vector<uint32_t>* Probe(size_t pos, const Value& v) const;

  /// Brings the lazy index of argument `pos` up to date so that
  /// subsequent Probe(pos, ...) calls are pure reads (safe from multiple
  /// threads as long as no Insert happens concurrently). No-op for an
  /// out-of-range pos.
  void WarmIndex(size_t pos) const;

 private:
  void ExtendIndex(size_t pos) const;

  std::vector<std::vector<Value>> tuples_;
  // full-tuple hash -> candidate indices (collision chain)
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;
  size_t arity_ = SIZE_MAX;

  struct PosIndex {
    std::unordered_map<Value, std::vector<uint32_t>, ValueHash> map;
    size_t indexed_upto = 0;
  };
  mutable std::vector<std::unique_ptr<PosIndex>> pos_indexes_;
};

/// A database instance: one Relation per predicate id of the catalog, plus
/// the OID registries shared by the chase (labeled nulls) and Skolem
/// functions.
class Database {
 public:
  explicit Database(Catalog* catalog) : catalog_(catalog) {}

  Catalog* catalog() const { return catalog_; }
  SkolemRegistry* skolems() { return &skolems_; }
  NullRegistry* nulls() { return &nulls_; }

  /// Relation for predicate id (created on demand).
  Relation* relation(uint32_t predicate);
  const Relation* relation(uint32_t predicate) const;

  /// Inserts a fact; returns true if new. Checks arity consistency.
  Result<bool> Insert(uint32_t predicate, std::vector<Value> tuple);

  /// Convenience: inserts by predicate name, interning it.
  Result<bool> InsertByName(std::string_view predicate,
                            std::vector<Value> tuple);

  /// Total number of stored facts.
  size_t TotalFacts() const;

  /// All tuples of a predicate by name (empty if unknown predicate).
  std::vector<std::vector<Value>> TuplesOf(std::string_view predicate) const;

  /// Value helpers bound to this database's catalog.
  Value Sym(std::string_view s) { return Value::Symbol(catalog_->symbols.Intern(s)); }
  std::string NameOf(const Value& v) const {
    return v.ToString(catalog_->symbols);
  }

 private:
  Catalog* catalog_;
  mutable std::vector<std::unique_ptr<Relation>> relations_;
  SkolemRegistry skolems_;
  NullRegistry nulls_;
};

}  // namespace vadalink::datalog
