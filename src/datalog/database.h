// Columnar fact storage for the Datalog± engine.
//
// A Relation stores one Value column per argument position. Rows have
// stable dense ids assigned in insertion order, which lets the engine
// express semi-naive deltas as row-id ranges instead of separate delta
// relations. Storage is append-only: every successful Insert advances the
// relation's epoch, and read views (PostingView) are epoch-stamped so a
// stale view trips a debug assertion instead of reading freed memory.
//
// Deduplication runs over an open-addressing hash table keyed by the
// full-row hash (no per-row heap allocation). Per-column hash indexes are
// built lazily and maintained incrementally as rows are appended; the
// per-column distinct counts they expose double as the planner's
// selectivity statistics.
//
// Streaming mode (SetStreaming) re-homes the columns into fixed-size pages
// so the space-bounded chase can release exhausted semi-naive epochs:
// EvictBelow(w) frees every whole page below row w, advances the
// first-resident watermark, bumps the epoch (stale PostingViews assert)
// and prunes evicted ids out of the posting lists. Row ids stay stable and
// the dedup table keeps every evicted row's slot — re-deriving an evicted
// fact is still suppressed, via a second independently seeded row hash
// (HashValues2) in place of the freed column data, an effective 128-bit
// equality whose false-positive odds are negligible (DESIGN.md section 13).
#pragma once

#include <atomic>
#include <cassert>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "datalog/ast.h"
#include "datalog/value.h"

namespace vadalink::datalog {

class Relation;

/// Non-owning view of one stored row. Valid as long as the relation is
/// alive; reads always go through the relation's current column storage,
/// so an append (which may reallocate columns) does not invalidate it —
/// the row id is stable.
class RowRef {
 public:
  RowRef(const Relation* rel, uint32_t row) : rel_(rel), row_(row) {}

  inline const Value& operator[](size_t pos) const;
  inline size_t size() const;  // the relation's arity
  uint32_t row() const { return row_; }

  /// Materialises an owning copy (boundary APIs, sorting in tests).
  inline std::vector<Value> ToTuple() const;

 private:
  const Relation* rel_;
  uint32_t row_;
};

/// Forward iteration over every row of a relation. An empty scan (unknown
/// predicate, relation never materialised) is a valid value: size() == 0,
/// begin() == end().
class RelationScan {
 public:
  RelationScan() = default;
  explicit RelationScan(const Relation* rel) : rel_(rel) {}

  class Iterator {
   public:
    Iterator(const Relation* rel, uint32_t row) : rel_(rel), row_(row) {}
    RowRef operator*() const { return RowRef(rel_, row_); }
    Iterator& operator++() {
      ++row_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return row_ == o.row_; }
    bool operator!=(const Iterator& o) const { return row_ != o.row_; }

   private:
    const Relation* rel_;
    uint32_t row_;
  };

  /// End bound of the iteration (total row count, evicted rows included);
  /// begin() starts at the first resident row, so a scan over a partially
  /// evicted relation visits resident rows only.
  inline size_t size() const;
  inline bool empty() const;
  /// Arity of the underlying relation; 0 for an empty scan.
  inline size_t arity() const;
  /// Indexing is by absolute (stable) row id.
  RowRef operator[](size_t i) const {
    return RowRef(rel_, static_cast<uint32_t>(i));
  }
  inline Iterator begin() const;
  Iterator end() const {
    return Iterator(rel_, static_cast<uint32_t>(size()));
  }

 private:
  const Relation* rel_ = nullptr;
};

/// Epoch-stamped view over one per-column posting list (ascending row
/// ids). Any access after a subsequent Insert into the relation trips a
/// debug assertion: the underlying storage may have been rehashed. Copy
/// the ids out before inserting if they must survive a write.
class PostingView {
 public:
  PostingView() = default;
  PostingView(const uint32_t* data, size_t size, const Relation* rel,
              uint64_t epoch)
      : data_(data), size_(size), rel_(rel), epoch_(epoch) {}

  inline const uint32_t* begin() const;
  inline const uint32_t* end() const;
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  inline uint32_t operator[](size_t i) const;

 private:
  inline void CheckEpoch() const;

  const uint32_t* data_ = nullptr;
  size_t size_ = 0;
  const Relation* rel_ = nullptr;
  uint64_t epoch_ = 0;
};

/// All facts of one predicate, stored column-major.
class Relation {
 public:
  Relation() = default;
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  /// Appends a row if not already present; returns true if it was new.
  /// A successful append advances the epoch.
  bool Insert(const Value* vals, size_t n);
  bool Insert(const std::vector<Value>& tuple) {
    return Insert(tuple.data(), tuple.size());
  }

  size_t size() const { return rows_; }

  /// Arity fixed by the first inserted row; SIZE_MAX while empty.
  size_t arity() const { return arity_; }

  /// Number of appends plus evictions since construction; stamps
  /// PostingViews (an eviction invalidates outstanding views exactly like
  /// an append does).
  uint64_t epoch() const { return epoch_; }

  /// Switches column storage to fixed-size pages so EvictBelow can free
  /// whole pages. Existing rows are migrated; idempotent. Must not be
  /// called during a parallel read phase.
  void SetStreaming();
  bool streaming() const { return paged_; }

  /// First row id whose column data is still resident; 0 unless EvictBelow
  /// ran. Rows below it keep their id, their dedup slot and their hashes,
  /// but their values must no longer be read.
  size_t first_resident() const { return first_resident_; }
  size_t resident_size() const { return rows_ - first_resident_; }

  /// Releases the column storage of rows [first_resident, watermark):
  /// frees every whole page below the watermark, prunes the posting lists,
  /// advances the watermark and bumps the epoch. Requires streaming mode.
  /// Returns the number of newly evicted rows. The caller must guarantee
  /// the evicted rows can no longer participate in any join (the engine's
  /// evictability analysis; see DESIGN.md section 13).
  size_t EvictBelow(size_t watermark);

  const Value& at(size_t pos, uint32_t row) const {
    if (paged_) {
      assert(row >= first_resident_ && "reading an evicted row");
      return pages_[pos][row >> kPageBits][row & kPageMask];
    }
    return columns_[pos][row];
  }
  RowRef Row(uint32_t row) const { return RowRef(this, row); }
  RelationScan Scan() const { return RelationScan(this); }

  /// True if the exact row is present.
  bool Contains(const Value* vals, size_t n) const {
    return Find(vals, n) >= 0;
  }
  bool Contains(const std::vector<Value>& tuple) const {
    return Contains(tuple.data(), tuple.size());
  }

  /// Row id of the exact row, or -1 if absent.
  int64_t Find(const Value* vals, size_t n) const;
  int64_t Find(const std::vector<Value>& tuple) const {
    return Find(tuple.data(), tuple.size());
  }

  /// Row ids whose argument `pos` equals `v` (lazily indexed, ascending).
  /// The view is stamped with the current epoch and debug-asserts on use
  /// after a subsequent Insert.
  ///
  /// Probe lazily (re)builds the index, so concurrent Probes race unless
  /// the index is already current — parallel read-only consumers must
  /// WarmIndex(pos) every position they will probe first. That
  /// precondition is enforced by an assertion while a ParallelReadScope
  /// is open (see Database::BeginParallelRead).
  PostingView Probe(size_t pos, const Value& v) const;

  /// Brings the lazy index of argument `pos` up to date so that
  /// subsequent Probe(pos, ...) calls are pure reads. No-op for an
  /// out-of-range pos.
  void WarmIndex(size_t pos) const;

  /// True when the index of `pos` exists and covers every row.
  bool IndexWarm(size_t pos) const {
    return pos < pos_indexes_.size() && pos_indexes_[pos] != nullptr &&
           pos_indexes_[pos]->indexed_upto == rows_;
  }

  /// Exact number of distinct values in column `pos` (warms its index —
  /// the planner's selectivity statistic). Returns size() for an
  /// out-of-range pos.
  size_t DistinctCount(size_t pos) const;

  /// Debug-mode guard of the parallel match phase: while the counter is
  /// non-zero, Insert and cold-index Probes assert. Balanced calls only;
  /// release builds keep the counter but skip the assertions.
  void BeginParallelRead() const {
    parallel_readers_.fetch_add(1, std::memory_order_relaxed);
  }
  void EndParallelRead() const {
    parallel_readers_.fetch_sub(1, std::memory_order_relaxed);
  }

 private:
  friend class RowRef;

  static constexpr size_t kPageBits = 12;
  static constexpr size_t kPageSize = size_t{1} << kPageBits;
  static constexpr size_t kPageMask = kPageSize - 1;

  struct PosIndex {
    std::unordered_map<Value, std::vector<uint32_t>, ValueHash> map;
    size_t indexed_upto = 0;
  };

  void ExtendIndex(size_t pos) const;
  bool RowEquals(uint32_t row, const Value* vals, size_t n) const;
  /// Equality against a stored row that works for evicted rows too: column
  /// compare when resident, double-hash compare when evicted.
  bool RowMatches(uint32_t row, const Value* vals, size_t n, uint64_t h,
                  uint64_t* h2) const;
  void GrowDedup();

  // One column per argument position; columns_[p][r] is row r's arg p.
  // Streaming mode replaces the flat columns with pages_[p][r >> kPageBits]
  // so EvictBelow can free whole pages.
  std::vector<std::vector<Value>> columns_;
  std::vector<std::vector<std::vector<Value>>> pages_;
  bool paged_ = false;
  size_t first_resident_ = 0;
  size_t rows_ = 0;
  size_t arity_ = SIZE_MAX;
  uint64_t epoch_ = 0;

  // Open-addressing dedup table: a slot packs the row hash's top 32 bits
  // (a collision-rejection tag, compared before touching the columns)
  // with row id + 1 in the low half (0 = whole slot empty), probed
  // linearly from the hash's low bits. row_hashes_ keeps each row's full
  // hash for table growth; row_hashes2_ (streaming mode only) keeps the
  // second hash that stands in for evicted rows' column data.
  std::vector<uint64_t> dedup_slots_;
  std::vector<uint64_t> row_hashes_;
  std::vector<uint64_t> row_hashes2_;

  mutable std::vector<std::unique_ptr<PosIndex>> pos_indexes_;
  mutable std::atomic<int> parallel_readers_{0};
};

inline const Value& RowRef::operator[](size_t pos) const {
  return rel_->at(pos, row_);
}
inline size_t RowRef::size() const {
  return rel_->arity_ == SIZE_MAX ? 0 : rel_->arity_;
}
inline std::vector<Value> RowRef::ToTuple() const {
  std::vector<Value> out;
  out.reserve(size());
  for (size_t p = 0; p < size(); ++p) out.push_back((*this)[p]);
  return out;
}

inline size_t RelationScan::size() const {
  return rel_ == nullptr ? 0 : rel_->size();
}
inline bool RelationScan::empty() const {
  return rel_ == nullptr || rel_->resident_size() == 0;
}
inline size_t RelationScan::arity() const {
  return rel_ == nullptr || rel_->arity() == SIZE_MAX ? 0 : rel_->arity();
}
inline RelationScan::Iterator RelationScan::begin() const {
  return Iterator(
      rel_, rel_ == nullptr ? 0 : static_cast<uint32_t>(rel_->first_resident()));
}

inline void PostingView::CheckEpoch() const {
  (void)rel_;
  (void)epoch_;
  assert((rel_ == nullptr || rel_->epoch() == epoch_) &&
         "PostingView used after a subsequent Insert invalidated it");
}
inline const uint32_t* PostingView::begin() const {
  CheckEpoch();
  return data_;
}
inline const uint32_t* PostingView::end() const {
  CheckEpoch();
  return data_ + size_;
}
inline uint32_t PostingView::operator[](size_t i) const {
  CheckEpoch();
  return data_[i];
}

/// A database instance: one Relation per predicate id of the catalog, plus
/// the OID registries shared by the chase (labeled nulls) and Skolem
/// functions.
class Database {
 public:
  explicit Database(Catalog* catalog) : catalog_(catalog) {}

  Catalog* catalog() const { return catalog_; }
  SkolemRegistry* skolems() { return &skolems_; }
  NullRegistry* nulls() { return &nulls_; }

  /// Relation for predicate id (created on demand).
  Relation* relation(uint32_t predicate);
  const Relation* relation(uint32_t predicate) const;

  /// Inserts a fact; returns true if new. Checks arity consistency.
  Result<bool> Insert(uint32_t predicate, const Value* vals, size_t n);
  Result<bool> Insert(uint32_t predicate, const std::vector<Value>& tuple) {
    return Insert(predicate, tuple.data(), tuple.size());
  }

  /// Convenience: inserts by predicate name, interning it.
  Result<bool> InsertByName(std::string_view predicate,
                            std::vector<Value> tuple);

  /// Total number of stored facts. O(1): all inserts flow through
  /// Database::Insert, which maintains the counter (checked in the chase's
  /// fact-limit guard after every head emission).
  size_t TotalFacts() const { return total_facts_; }

  /// Facts whose column storage is still resident (TotalFacts minus every
  /// EvictBelow release) — the streaming chase's memory measure.
  size_t ResidentFacts() const { return total_facts_ - evicted_rows_; }
  /// Rows released across all relations by the streaming chase.
  size_t EvictedRows() const { return evicted_rows_; }
  bool HasEvicted() const { return evicted_rows_ > 0; }

  /// Switches one relation into streaming (paged) column storage; see
  /// Relation::SetStreaming.
  void SetStreaming(uint32_t predicate) { relation(predicate)->SetStreaming(); }
  /// Relation::EvictBelow plus database-level accounting.
  size_t EvictBelow(uint32_t predicate, size_t watermark);

  /// Non-allocating scan over every fact of a predicate. An unknown or
  /// never-materialised predicate yields an empty scan. Row views stay
  /// valid across appends (row ids are stable); they dangle only if the
  /// database itself is destroyed.
  RelationScan Scan(std::string_view predicate) const;
  RelationScan Scan(uint32_t predicate) const;

  /// Opens/closes a debug-asserted read-only phase on every existing
  /// relation (see Relation::BeginParallelRead).
  void BeginParallelRead() const;
  void EndParallelRead() const;

  /// Value helpers bound to this database's catalog.
  Value Sym(std::string_view s) {
    return Value::Symbol(catalog_->symbols.Intern(s));
  }
  std::string NameOf(const Value& v) const {
    return v.ToString(catalog_->symbols);
  }

 private:
  Catalog* catalog_;
  mutable std::vector<std::unique_ptr<Relation>> relations_;
  size_t total_facts_ = 0;
  size_t evicted_rows_ = 0;
  SkolemRegistry skolems_;
  NullRegistry nulls_;
};

}  // namespace vadalink::datalog
