#include "datalog/parser.h"

#include <unordered_map>

#include "datalog/lexer.h"

namespace vadalink::datalog {

namespace {

bool IsAggName(const std::string& s, AggKind* kind) {
  if (s == "msum") *kind = AggKind::kMSum;
  else if (s == "mprod") *kind = AggKind::kMProd;
  else if (s == "mmin") *kind = AggKind::kMMin;
  else if (s == "mmax") *kind = AggKind::kMMax;
  else if (s == "mcount") *kind = AggKind::kMCount;
  else return false;
  return true;
}

class Parser {
 public:
  Parser(std::vector<Token> tokens, Catalog* catalog)
      : tokens_(std::move(tokens)), catalog_(catalog) {}

  Result<Program> Parse() {
    Program program;
    while (!Check(TokenType::kEof)) {
      VL_RETURN_NOT_OK(ParseStatement(&program));
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Peek2() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  bool Check(TokenType t) const { return Peek().type == t; }
  Token Advance() { return tokens_[pos_++]; }
  bool Match(TokenType t) {
    if (Check(t)) {
      ++pos_;
      return true;
    }
    return false;
  }

  static SourceSpan SpanOf(const Token& tok) {
    SourceSpan s;
    s.line = tok.line;
    s.col = tok.col;
    return s;
  }

  Status Error(const std::string& msg) {
    return Status::ParseError(SpanOf(Peek()).ToString() + ": " + msg +
                              " (found " + TokenTypeName(Peek().type) +
                              (Peek().text.empty() ? "" : " '" + Peek().text + "'") +
                              ")");
  }

  /// Error anchored at a rule's starting position (for whole-rule checks).
  static Status RuleError(const Rule& rule, const std::string& msg) {
    return Status::ParseError(rule.span.ToString() + ": " + msg);
  }

  Status Expect(TokenType t, const char* what) {
    if (!Match(t)) return Error(std::string("expected ") + what);
    return Status::OK();
  }

  Status ParseStatement(Program* program) {
    if (Match(TokenType::kAt)) return ParseDirective(program);

    // Parse one rule or fact. We parse the body literals first; when a '.'
    // follows immediately after a single ground atom, it is a fact.
    Rule rule;
    rule.span = SpanOf(Peek());
    var_index_.clear();
    VL_RETURN_NOT_OK(ParseLiteral(&rule));
    while (Match(TokenType::kComma)) {
      VL_RETURN_NOT_OK(ParseLiteral(&rule));
    }
    if (Match(TokenType::kDot)) {
      // Fact(s): every literal must be a ground positive atom.
      for (const Literal& l : rule.body) {
        if (l.kind != Literal::Kind::kAtom) {
          return Status::ParseError(
              l.span.ToString() +
              ": only plain atoms may be asserted as facts");
        }
        for (const Term& t : l.atom.args) {
          if (t.is_var()) {
            return Status::ParseError(l.atom.span.ToString() +
                                      ": fact arguments must be ground");
          }
        }
        program->facts.push_back(l.atom);
      }
      return Status::OK();
    }
    VL_RETURN_NOT_OK(Expect(TokenType::kArrow, "'->' or '.'"));
    VL_RETURN_NOT_OK(ParseAtom(&rule, &rule.head.emplace_back()));
    while (Match(TokenType::kComma)) {
      VL_RETURN_NOT_OK(ParseAtom(&rule, &rule.head.emplace_back()));
    }
    VL_RETURN_NOT_OK(Expect(TokenType::kDot, "'.' after rule head"));
    VL_RETURN_NOT_OK(ValidateRule(rule));
    program->rules.push_back(std::move(rule));
    return Status::OK();
  }

  Status ParseDirective(Program* program) {
    if (!Check(TokenType::kIdent)) return Error("expected directive name");
    std::string name = Advance().text;
    VL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
    if (!Check(TokenType::kIdent) && !Check(TokenType::kString)) {
      return Error("expected predicate name");
    }
    std::string arg = Advance().text;
    VL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    VL_RETURN_NOT_OK(Expect(TokenType::kDot, "'.'"));
    if (name == "output") {
      program->outputs.push_back(catalog_->predicates.Intern(arg));
    } else if (name == "input") {
      // Input declarations are accepted for documentation purposes.
    } else {
      return Status::ParseError("unknown directive @" + name);
    }
    return Status::OK();
  }

  uint32_t VarId(Rule* rule, const std::string& name) {
    auto it = var_index_.find(name);
    if (it != var_index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(rule->var_names.size());
    rule->var_names.push_back(name);
    var_index_.emplace(name, id);
    return id;
  }

  // literal := 'not' atom | VARIABLE '=' expr | atom | expr CMP expr
  Status ParseLiteral(Rule* rule) {
    Literal lit;
    lit.span = SpanOf(Peek());
    if (Check(TokenType::kIdent) && Peek().text == "not") {
      Advance();
      lit.kind = Literal::Kind::kNegatedAtom;
      VL_RETURN_NOT_OK(ParseAtom(rule, &lit.atom));
      rule->body.push_back(std::move(lit));
      return Status::OK();
    }
    // Assignment: VARIABLE '=' ...
    if (Check(TokenType::kVariable) && Peek2().type == TokenType::kEq) {
      lit.kind = Literal::Kind::kAssignment;
      lit.target_var = VarId(rule, Advance().text);
      Advance();  // '='
      VL_ASSIGN_OR_RETURN(lit.rhs, ParseExpr(rule));
      rule->body.push_back(std::move(lit));
      return Status::OK();
    }
    // Plain atom: IDENT '(' — but an IDENT could also start a comparison
    // expression (symbol constant); disambiguate by the following token.
    if (Check(TokenType::kIdent) && Peek2().type == TokenType::kLParen) {
      AggKind dummy;
      if (!IsAggName(Peek().text, &dummy)) {
        lit.kind = Literal::Kind::kAtom;
        VL_RETURN_NOT_OK(ParseAtom(rule, &lit.atom));
        rule->body.push_back(std::move(lit));
        return Status::OK();
      }
    }
    if (Check(TokenType::kIdent) && Peek2().type != TokenType::kLParen &&
        !IsComparisonNext()) {
      // 0-ary atom, e.g. "flag".
      lit.kind = Literal::Kind::kAtom;
      lit.atom.span = SpanOf(Peek());
      lit.atom.predicate = catalog_->predicates.Intern(Advance().text);
      rule->body.push_back(std::move(lit));
      return Status::OK();
    }
    // Comparison.
    lit.kind = Literal::Kind::kComparison;
    VL_ASSIGN_OR_RETURN(lit.lhs, ParseExpr(rule));
    switch (Peek().type) {
      case TokenType::kEqEq: lit.cmp = CmpOp::kEq; break;
      case TokenType::kNe: lit.cmp = CmpOp::kNe; break;
      case TokenType::kLt: lit.cmp = CmpOp::kLt; break;
      case TokenType::kLe: lit.cmp = CmpOp::kLe; break;
      case TokenType::kGt: lit.cmp = CmpOp::kGt; break;
      case TokenType::kGe: lit.cmp = CmpOp::kGe; break;
      default:
        return Error("expected comparison operator");
    }
    Advance();
    VL_ASSIGN_OR_RETURN(lit.rhs, ParseExpr(rule));
    rule->body.push_back(std::move(lit));
    return Status::OK();
  }

  // Heuristic: does a comparison operator follow the next token? Used to
  // let bare identifiers act as 0-ary atoms vs symbol constants in
  // comparisons like  x == abc.
  bool IsComparisonNext() const {
    TokenType t = Peek2().type;
    return t == TokenType::kEqEq || t == TokenType::kNe ||
           t == TokenType::kLt || t == TokenType::kLe ||
           t == TokenType::kGt || t == TokenType::kGe;
  }

  Status ParseAtom(Rule* rule, Atom* atom) {
    if (!Check(TokenType::kIdent)) return Error("expected predicate name");
    atom->span = SpanOf(Peek());
    atom->predicate = catalog_->predicates.Intern(Advance().text);
    if (!Match(TokenType::kLParen)) return Status::OK();  // 0-ary
    if (Match(TokenType::kRParen)) return Status::OK();
    for (;;) {
      VL_ASSIGN_OR_RETURN(Term t, ParseTerm(rule));
      atom->args.push_back(std::move(t));
      if (Match(TokenType::kRParen)) break;
      VL_RETURN_NOT_OK(Expect(TokenType::kComma, "',' or ')'"));
    }
    return Status::OK();
  }

  Result<Term> ParseTerm(Rule* rule) {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kVariable:
        return Term::Var(VarId(rule, Advance().text));
      case TokenType::kString:
        return Term::Const(Value::Symbol(catalog_->symbols.Intern(Advance().text)));
      case TokenType::kInt:
        return Term::Const(Value::Int(Advance().int_value));
      case TokenType::kDouble:
        return Term::Const(Value::Double(Advance().double_value));
      case TokenType::kMinus: {
        Advance();
        if (Check(TokenType::kInt)) {
          return Term::Const(Value::Int(-Advance().int_value));
        }
        if (Check(TokenType::kDouble)) {
          return Term::Const(Value::Double(-Advance().double_value));
        }
        return Error("expected number after '-'");
      }
      case TokenType::kIdent: {
        std::string name = Advance().text;
        if (name == "true") return Term::Const(Value::Bool(true));
        if (name == "false") return Term::Const(Value::Bool(false));
        // Bare lower-case identifier: symbol constant.
        return Term::Const(Value::Symbol(catalog_->symbols.Intern(name)));
      }
      default:
        return Error("expected term");
    }
  }

  // expr := mul (('+'|'-') mul)*
  Result<Expr> ParseExpr(Rule* rule) {
    VL_ASSIGN_OR_RETURN(Expr lhs, ParseMul(rule));
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      Expr::Op op = Advance().type == TokenType::kPlus ? Expr::Op::kAdd
                                                       : Expr::Op::kSub;
      VL_ASSIGN_OR_RETURN(Expr rhs, ParseMul(rule));
      Expr combined;
      combined.op = op;
      combined.children.push_back(std::move(lhs));
      combined.children.push_back(std::move(rhs));
      lhs = std::move(combined);
    }
    return lhs;
  }

  Result<Expr> ParseMul(Rule* rule) {
    VL_ASSIGN_OR_RETURN(Expr lhs, ParseUnary(rule));
    while (Check(TokenType::kStar) || Check(TokenType::kSlash)) {
      Expr::Op op = Advance().type == TokenType::kStar ? Expr::Op::kMul
                                                       : Expr::Op::kDiv;
      VL_ASSIGN_OR_RETURN(Expr rhs, ParseUnary(rule));
      Expr combined;
      combined.op = op;
      combined.children.push_back(std::move(lhs));
      combined.children.push_back(std::move(rhs));
      lhs = std::move(combined);
    }
    return lhs;
  }

  Result<Expr> ParseUnary(Rule* rule) {
    if (Match(TokenType::kMinus)) {
      VL_ASSIGN_OR_RETURN(Expr inner, ParseUnary(rule));
      if (inner.op == Expr::Op::kConst && inner.constant.is_int()) {
        return Expr::Const(Value::Int(-inner.constant.AsInt()));
      }
      if (inner.op == Expr::Op::kConst && inner.constant.is_double()) {
        return Expr::Const(Value::Double(-inner.constant.AsDouble()));
      }
      Expr e;
      e.op = Expr::Op::kNeg;
      e.children.push_back(std::move(inner));
      return e;
    }
    return ParsePrimary(rule);
  }

  Result<Expr> ParsePrimary(Rule* rule) {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInt:
        return Expr::Const(Value::Int(Advance().int_value));
      case TokenType::kDouble:
        return Expr::Const(Value::Double(Advance().double_value));
      case TokenType::kString:
        return Expr::Const(
            Value::Symbol(catalog_->symbols.Intern(Advance().text)));
      case TokenType::kVariable:
        return Expr::Var(VarId(rule, Advance().text));
      case TokenType::kLParen: {
        Advance();
        VL_ASSIGN_OR_RETURN(Expr inner, ParseExpr(rule));
        VL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kHash: {
        Advance();
        if (!Check(TokenType::kIdent)) return Error("expected function name");
        std::string fname = Advance().text;
        Expr e;
        e.op = Expr::Op::kCall;
        e.function = catalog_->functions.Intern(fname);
        VL_RETURN_NOT_OK(Expect(TokenType::kLParen, "'('"));
        if (!Match(TokenType::kRParen)) {
          for (;;) {
            VL_ASSIGN_OR_RETURN(Expr arg, ParseExpr(rule));
            e.children.push_back(std::move(arg));
            if (Match(TokenType::kRParen)) break;
            VL_RETURN_NOT_OK(Expect(TokenType::kComma, "',' or ')'"));
          }
        }
        return e;
      }
      case TokenType::kIdent: {
        std::string name = Peek().text;
        AggKind agg;
        if (IsAggName(name, &agg) && Peek2().type == TokenType::kLParen) {
          Advance();  // name
          Advance();  // '('
          return ParseAggregate(rule, agg);
        }
        Advance();
        if (name == "true") return Expr::Const(Value::Bool(true));
        if (name == "false") return Expr::Const(Value::Bool(false));
        return Expr::Const(
            Value::Symbol(catalog_->symbols.Intern(name)));
      }
      default:
        return Error("expected expression");
    }
  }

  // After 'msum(' : expr [',' '<' vars '>'] ')'
  // After 'mcount(' : '<' vars '>' ')'
  Result<Expr> ParseAggregate(Rule* rule, AggKind agg) {
    Expr e;
    e.op = Expr::Op::kAggregate;
    e.agg = agg;
    if (agg != AggKind::kMCount) {
      VL_ASSIGN_OR_RETURN(Expr value, ParseExpr(rule));
      e.children.push_back(std::move(value));
      if (Match(TokenType::kRParen)) return e;  // no contributor list
      VL_RETURN_NOT_OK(Expect(TokenType::kComma, "',' or ')'"));
    }
    VL_RETURN_NOT_OK(Expect(TokenType::kLt, "'<' starting contributor list"));
    for (;;) {
      if (!Check(TokenType::kVariable)) {
        return Error("expected contributor variable");
      }
      e.contributors.push_back(VarId(rule, Advance().text));
      if (Match(TokenType::kGt)) break;
      VL_RETURN_NOT_OK(Expect(TokenType::kComma, "',' or '>'"));
    }
    VL_RETURN_NOT_OK(Expect(TokenType::kRParen, "')'"));
    return e;
  }

  // Static safety checks.
  Status ValidateRule(const Rule& rule) {
    std::vector<bool> positive_bound(rule.var_names.size(), false);
    for (const Literal& l : rule.body) {
      if (l.kind == Literal::Kind::kAtom) {
        for (const Term& t : l.atom.args) {
          if (t.is_var()) positive_bound[t.var] = true;
        }
      }
    }
    // Literals are evaluated left to right; assignments bind their target.
    std::vector<bool> bound = positive_bound;
    for (const Literal& l : rule.body) {
      if (l.kind == Literal::Kind::kAssignment) bound[l.target_var] = true;
    }
    auto check_vars_bound = [&](const Expr& e, const SourceSpan& span,
                                const char* what) -> Status {
      std::vector<bool> used(rule.var_names.size(), false);
      CollectExprVars(e, &used);
      for (uint32_t v = 0; v < used.size(); ++v) {
        if (used[v] && !bound[v]) {
          return Status::ParseError(
              span.ToString() + ": variable " + rule.var_names[v] + " in " +
              what + " is not bound by any positive body atom or assignment");
        }
      }
      return Status::OK();
    };
    size_t agg_count = 0;
    for (const Literal& l : rule.body) {
      switch (l.kind) {
        case Literal::Kind::kAtom:
          break;
        case Literal::Kind::kNegatedAtom:
          for (const Term& t : l.atom.args) {
            if (t.is_var() && !bound[t.var]) {
              return Status::ParseError(
                  l.atom.span.ToString() + ": variable " +
                  rule.var_names[t.var] + " appears only under negation");
            }
          }
          break;
        case Literal::Kind::kComparison:
          VL_RETURN_NOT_OK(check_vars_bound(l.lhs, l.span, "comparison"));
          VL_RETURN_NOT_OK(check_vars_bound(l.rhs, l.span, "comparison"));
          if (l.lhs.is_aggregate() || l.rhs.is_aggregate()) {
            return Status::ParseError(
                l.span.ToString() +
                ": aggregates may only appear in assignments");
          }
          break;
        case Literal::Kind::kAssignment:
          if (l.rhs.is_aggregate()) {
            ++agg_count;
            if (l.rhs.agg != AggKind::kMCount && l.rhs.children.empty()) {
              return Status::ParseError(l.span.ToString() +
                                        ": aggregate needs a value argument");
            }
          } else {
            // Nested aggregates inside other expressions are not allowed.
            if (HasNestedAggregate(l.rhs)) {
              return Status::ParseError(
                  l.span.ToString() +
                  ": aggregates may only appear at assignment top level");
            }
          }
          VL_RETURN_NOT_OK(check_vars_bound(l.rhs, l.span, "assignment"));
          if (positive_bound[l.target_var]) {
            return Status::ParseError(
                l.span.ToString() + ": variable " +
                rule.var_names[l.target_var] +
                " is both atom-bound and assigned");
          }
          break;
      }
    }
    if (agg_count > 1) {
      return RuleError(rule, "at most one aggregate per rule");
    }
    if (rule.head.empty()) {
      return RuleError(rule, "rule has no head");
    }
    return Status::OK();
  }

  static bool HasNestedAggregate(const Expr& e) {
    if (e.op == Expr::Op::kAggregate) return true;
    for (const Expr& c : e.children) {
      if (HasNestedAggregate(c)) return true;
    }
    return false;
  }

  std::vector<Token> tokens_;
  Catalog* catalog_;
  size_t pos_ = 0;
  std::unordered_map<std::string, uint32_t> var_index_;
};

}  // namespace

Result<Program> ParseProgram(std::string_view source, Catalog* catalog) {
  VL_ASSIGN_OR_RETURN(auto tokens, Tokenize(source));
  Parser parser(std::move(tokens), catalog);
  return parser.Parse();
}

}  // namespace vadalink::datalog
