// External-function registry for the engine.
//
// Functions are invoked from rule bodies with the '#name(args)' syntax, the
// mechanism the paper uses to plug #sk, #GenerateBlocks, #GraphEmbedClust
// and #LinkProbability into Vadalog rules. The engine ships a standard
// library (Skolems, arithmetic, string ops, hashing); domain modules
// register their own functions on top.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "datalog/value.h"

namespace vadalink::datalog {

struct Catalog;

/// State handed to external functions at call time.
struct FunctionContext {
  SymbolTable* symbols = nullptr;
  SkolemRegistry* skolems = nullptr;
};

/// An external function: pure mapping from ground argument values to one
/// ground value. Must be deterministic — the chase may re-invoke it.
using ExternalFn =
    std::function<Result<Value>(FunctionContext&, const std::vector<Value>&)>;

/// Name -> function table.
class FunctionRegistry {
 public:
  /// Registers (or replaces) a function under `name` (no leading '#').
  void Register(std::string name, ExternalFn fn);

  /// Looks up a function; nullptr if unknown.
  const ExternalFn* Find(std::string_view name) const;

  /// Registers the standard library:
  ///   sk(tag, ...)          deterministic Skolem OID (injective per tag,
  ///                         ranges disjoint across tags)
  ///   hash(...)             64-bit value hash as int
  ///   mod(a, b)             integer modulo
  ///   concat(a, b, ...)     string concatenation -> symbol
  ///   lower(s) / upper(s)   ASCII case mapping
  ///   strlen(s)             length of a symbol
  ///   substr(s, pos, len)   substring
  ///   abs(x) min(a,b) max(a,b) pow(a,b) sqrt(x) floor(x) ceil(x)
  ///   toint(x) todouble(x) tostring(x)
  void RegisterStandardLibrary();

 private:
  std::unordered_map<std::string, ExternalFn> fns_;
};

}  // namespace vadalink::datalog
