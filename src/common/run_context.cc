#include "common/run_context.h"

#include <string>

namespace vadalink {

double RunContext::remaining_seconds() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline_ - Clock::now()).count();
}

Status RunContext::CheckImpl(bool read_clock) const {
  Clock::time_point now{};
  if (read_clock) now = Clock::now();
  for (const RunContext* c = this; c != nullptr; c = c->parent_) {
    if (c->cancel_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("run cancelled");
    }
    if (c->work_used_.load(std::memory_order_relaxed) > c->work_budget_) {
      return Status::ResourceExhausted(
          "work budget exhausted (" + std::to_string(c->work_budget_) +
          " units)");
    }
    if (read_clock && c->has_deadline_ && now > c->deadline_) {
      return Status::DeadlineExceeded("deadline exceeded");
    }
  }
  return Status::OK();
}

}  // namespace vadalink
