// Deterministic fault injection for testing Status propagation.
//
// Production code marks named sites on its error paths:
//
//     Status LoadGraphCsv(...) {
//       VL_FAULT_POINT("graph_io.load_csv");
//       ...
//     }
//
// When nothing is armed (the production state) a site costs one relaxed
// atomic load. Tests arm a site with a FaultSpec and the site returns the
// injected Status, proving the error propagates through every caller
// without crashes or half-mutated state:
//
//     FaultInjection::Arm("graph_io.load_csv",
//                         {StatusCode::kIoError, "disk gone"});
//     EXPECT_EQ(LoadGraphCsv(...).status().code(), StatusCode::kIoError);
//     FaultInjection::Reset();
//
// Firing is deterministic: a spec fires on every pass after the first
// `skip` hits, up to `max_fires` times; with probability < 1 the decision
// comes from a SplitMix64 stream seeded by `seed`, so a given (spec, hit
// sequence) always fires the same way. While any site is armed, hit counts
// are recorded for *every* visited site, so tests can assert a site was
// actually reached.
//
// The registry is global and mutex-protected; Reset() between tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>

#include "common/status.h"

namespace vadalink {

struct FaultSpec {
  StatusCode code = StatusCode::kInternal;
  std::string message = "injected fault";
  /// Let the first `skip` passes through the site succeed.
  uint64_t skip = 0;
  /// Stop firing after this many injections (the site then succeeds again).
  uint64_t max_fires = std::numeric_limits<uint64_t>::max();
  /// Chance of firing on an eligible pass; decided by a deterministic
  /// per-site SplitMix64 stream seeded by `seed`.
  double probability = 1.0;
  uint64_t seed = 1;
};

class FaultInjection {
 public:
  /// Arms (or re-arms, resetting counters) a site.
  static void Arm(const std::string& site, FaultSpec spec);
  static void Disarm(const std::string& site);
  /// Disarms every site and clears all hit counters.
  static void Reset();

  /// Passes through `site` recorded since the registry was last non-empty.
  static uint64_t HitCount(const std::string& site);
  /// Injections fired at `site`.
  static uint64_t FireCount(const std::string& site);

  /// True iff at least one site is armed — the hot-path fast gate.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Slow path: records the hit and returns the injected Status if the
  /// site's spec elects to fire. Called only behind AnyArmed().
  static Status Check(const char* site);

 private:
  static std::atomic<int> armed_count_;
};

/// Marks a fault-injection site in a function returning Status or
/// Result<T>. Near-zero cost unless a test armed the registry.
#define VL_FAULT_POINT(site)                                              \
  do {                                                                    \
    if (::vadalink::FaultInjection::AnyArmed()) {                         \
      ::vadalink::Status _vl_fault_st =                                   \
          ::vadalink::FaultInjection::Check(site);                        \
      if (!_vl_fault_st.ok()) return _vl_fault_st;                        \
    }                                                                     \
  } while (0)

}  // namespace vadalink
