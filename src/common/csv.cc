#include "common/csv.h"

#include <fstream>
#include <sstream>

namespace vadalink {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current row has any content

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("quote inside unquoted field at byte " +
                                    std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        ++i;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        field_started = true;
        ++i;
        break;
      case '\r':
        ++i;  // tolerate CRLF
        break;
      case '\n':
        if (field_started || !field.empty() || !row.empty()) {
          row.push_back(std::move(field));
          field.clear();
          rows.push_back(std::move(row));
          row.clear();
          field_started = false;
        }
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (field_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::string EncodeCsvRow(const std::vector<std::string>& fields) {
  // A row holding exactly one empty field would otherwise encode as an
  // empty line, which parsers (including ours) treat as no row at all.
  if (fields.size() == 1 && fields[0].empty()) return "\"\"";
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& f = fields[i];
    bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quote) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ParseCsv(ss.str());
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const auto& row : rows) {
    out << EncodeCsvRow(row) << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace vadalink
