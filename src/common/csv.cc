#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/fault_injection.h"

namespace vadalink {

Result<CsvDocument> ParseCsvDocument(std::string_view text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // true once the current row has any content
  size_t line = 1;             // 1-based line of the cursor
  size_t row_line = 1;         // line the current row started on
  size_t quote_line = 0;       // line the open quote started on

  auto end_row = [&] {
    row.push_back(std::move(field));
    field.clear();
    doc.rows.push_back(std::move(row));
    row.clear();
    doc.row_lines.push_back(row_line);
    field_started = false;
  };

  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        if (c == '\n') ++line;
        field += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("line " + std::to_string(line) +
                                    ": quote inside unquoted field (byte " +
                                    std::to_string(i) + ")");
        }
        in_quotes = true;
        quote_line = line;
        field_started = true;
        ++i;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        field_started = true;
        ++i;
        break;
      case '\r':
        ++i;  // tolerate CRLF
        break;
      case '\n':
        if (field_started || !field.empty() || !row.empty()) end_row();
        ++line;
        row_line = line;
        ++i;
        break;
      default:
        field += c;
        field_started = true;
        ++i;
        break;
    }
  }
  if (in_quotes) {
    return Status::ParseError(
        "unterminated quoted field (quote opened on line " +
        std::to_string(quote_line) + "); input truncated?");
  }
  if (field_started || !field.empty() || !row.empty()) end_row();
  return doc;
}

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  VL_ASSIGN_OR_RETURN(CsvDocument doc, ParseCsvDocument(text));
  return std::move(doc.rows);
}

std::string EncodeCsvRow(const std::vector<std::string>& fields) {
  // A row holding exactly one empty field would otherwise encode as an
  // empty line, which parsers (including ours) treat as no row at all.
  if (fields.size() == 1 && fields[0].empty()) return "\"\"";
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += ',';
    const std::string& f = fields[i];
    bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
    if (needs_quote) {
      out += '"';
      for (char c : f) {
        if (c == '"') out += '"';
        out += c;
      }
      out += '"';
    } else {
      out += f;
    }
  }
  return out;
}

Result<CsvDocument> ReadCsvDocument(const std::string& path) {
  VL_FAULT_POINT("csv.read_file");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  auto doc = ParseCsvDocument(ss.str());
  if (!doc.ok()) {
    return Status::ParseError(path + ": " + doc.status().message());
  }
  return doc;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  VL_ASSIGN_OR_RETURN(CsvDocument doc, ReadCsvDocument(path));
  return std::move(doc.rows);
}

Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows) {
  VL_FAULT_POINT("csv.write_file");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  for (const auto& row : rows) {
    out << EncodeCsvRow(row) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace vadalink
