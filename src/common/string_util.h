// Small string helpers used by the Datalog lexer, CSV codec and linkage
// feature normalisation.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace vadalink {

/// Splits `s` on `delim`; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lower-case copy.
std::string ToLower(std::string_view s);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Formats a double without trailing zeros ("0.25", "3", "0.125").
std::string FormatDouble(double v);

}  // namespace vadalink
