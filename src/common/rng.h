// Deterministic pseudo-random number generation for simulators, generators
// and embedding training. All stochastic components of the library take an
// explicit Rng (or seed) so that experiments are reproducible run-to-run.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace vadalink {

/// SplitMix64 PRNG (Steele, Lea & Flood 2014).
///
/// Small state, passes BigCrush, and — unlike std::mt19937 — has a stable
/// stream across standard library implementations, which matters for
/// reproducible synthetic datasets.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t UniformU64(uint64_t n) {
    assert(n > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0ULL - n) % n;
    for (;;) {
      uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * UniformDouble();
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return UniformDouble() < p; }

  /// Standard normal via Box-Muller (one value per call, cached pair).
  double Normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = 0.0;
    while (u1 <= 1e-300) u1 = UniformDouble();
    double u2 = UniformDouble();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev) {
    return mean + stddev * Normal();
  }

  /// Geometric-ish power-law sample in [1, max]: P(k) ~ k^-alpha.
  /// Uses inverse transform on the continuous approximation.
  uint64_t PowerLaw(double alpha, uint64_t max_value) {
    assert(alpha > 1.0 && max_value >= 1);
    double u = UniformDouble();
    double exp = 1.0 - alpha;
    double lo = 1.0, hi = static_cast<double>(max_value) + 1.0;
    double x = std::pow(std::pow(lo, exp) +
                            u * (std::pow(hi, exp) - std::pow(lo, exp)),
                        1.0 / exp);
    uint64_t k = static_cast<uint64_t>(x);
    if (k < 1) k = 1;
    if (k > max_value) k = max_value;
    return k;
  }

  /// Uniformly selected index weighted by `weights` (need not be normalised).
  size_t WeightedIndex(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    assert(total > 0.0);
    double target = UniformDouble() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (target < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = UniformU64(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Reservoir-samples k distinct indices from [0, n).
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    if (k > n) k = n;
    std::vector<size_t> out(k);
    for (size_t i = 0; i < k; ++i) out[i] = i;
    for (size_t i = k; i < n; ++i) {
      size_t j = UniformU64(i + 1);
      if (j < k) out[j] = i;
    }
    return out;
  }

 private:
  uint64_t state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace vadalink
