// Wall-clock timing for the benchmark harness and the experiment drivers.
#pragma once

#include <chrono>

namespace vadalink {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace vadalink
