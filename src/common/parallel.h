// Shared parallel-execution subsystem: a fixed-size thread pool with
// chunked ParallelFor / ParallelReduce, deterministic per-chunk seeding
// and first-class RunContext integration.
//
// Design contract (relied on by every parallel stage in the pipeline):
//
//  * Chunk boundaries depend only on (n, grain) — never on the thread
//    count — so a stage whose per-chunk work is deterministic produces
//    identical output at any threads >= 2. threads = 1 is handled one
//    level up: call sites keep their original sequential code path, which
//    stays byte-identical to the pre-parallel implementation.
//  * Scheduling is dynamic (workers claim chunks from a shared ticket),
//    so skewed chunk costs (e.g. blocks of wildly different sizes) load-
//    balance without static partitioning.
//  * A RunContext, when given, is polled at every chunk boundary in the
//    workers: cooperative cancellation and deadline checks propagate into
//    the pool, remaining chunks are skipped after a trip, and the trip
//    Status is returned to the caller. Among failing chunks, the error of
//    the lowest-indexed one wins (deterministic error identity).
//  * Stochastic stages derive one RNG per chunk via ChunkSeed(seed,
//    stream, chunk) instead of sharing a sequential stream, which is what
//    makes their parallel output reproducible run-to-run.
//
// ParallelFor on a null pool (or a 1-thread pool, or a single chunk) runs
// inline on the caller with identical chunking and Status semantics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/hash.h"
#include "common/run_context.h"
#include "common/status.h"

namespace vadalink {

/// Concurrency knobs, configured once (CLI --threads / PipelineOptions)
/// and flowed down to every parallel stage.
struct ParallelOptions {
  /// Worker threads for parallel stages. 1 (default) = the sequential
  /// legacy path, byte-identical to the pre-parallel pipeline; 0 = one
  /// thread per hardware core.
  size_t threads = 1;
  /// Items per chunk for ParallelFor. 0 = automatic (n / 64, at least 1).
  /// Chunking is a pure function of (n, grain): outputs of deterministic
  /// parallel stages do not depend on the thread count.
  size_t grain = 0;

  /// threads with 0 resolved to the hardware concurrency (at least 1).
  size_t EffectiveThreads() const;

  /// kInvalidArgument when threads or grain exceed sane bounds.
  Status Validate() const;
};

/// Fixed-size pool of persistent workers executing one chunked loop at a
/// time. The constructing ("caller") thread participates in every loop, so
/// ThreadPool(n) spawns n-1 workers and RunChunks uses n threads total.
///
/// Not reentrant: a ParallelFor body that issues another ParallelFor on
/// the same pool runs the inner loop inline on its own thread.
class ThreadPool {
 public:
  /// `threads` is clamped to >= 1. `default_grain` is used by ParallelFor
  /// calls that pass grain = 0 (0 = automatic).
  explicit ThreadPool(size_t threads, size_t default_grain = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads applied to a loop (workers + the calling thread).
  size_t thread_count() const { return thread_count_; }
  size_t default_grain() const { return default_grain_; }

  /// Runs fn(chunk) for every chunk in [0, num_chunks), distributing
  /// chunks dynamically over the workers and the calling thread. Blocks
  /// until every chunk has finished. fn must be safe to call concurrently
  /// from multiple threads with distinct chunk indices.
  void RunChunks(size_t num_chunks, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and executes chunks of generation `gen` until the job is
  /// exhausted or superseded.
  void DrainChunks(uint64_t gen, size_t num_chunks,
                   const std::function<void(size_t)>& fn);

  size_t thread_count_;
  size_t default_grain_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  // Guarded by mu_:
  const std::function<void(size_t)>* job_fn_ = nullptr;
  size_t job_chunks_ = 0;
  uint64_t job_gen_ = 0;
  bool stop_ = false;

  // (generation << 32) | next-chunk ticket. The generation tag makes a
  // stale worker's claim on a superseded job fail its CAS instead of
  // stealing a chunk from the next job.
  std::atomic<uint64_t> claim_{0};
  std::atomic<size_t> completed_{0};
};

/// Pool described by `options`, or nullptr when options resolve to one
/// thread (the caller should then take its sequential path).
std::unique_ptr<ThreadPool> MakeThreadPool(const ParallelOptions& options);

/// Deterministic per-chunk RNG seed: a pure function of (seed, stream,
/// chunk), independent of thread count and schedule. `stream` separates
/// uses within one stage (e.g. walk round or training epoch).
inline uint64_t ChunkSeed(uint64_t seed, uint64_t stream, uint64_t chunk) {
  return HashFinalize(HashCombine(HashCombine(seed, stream), chunk));
}

/// Chunk size actually used for a loop of n items (grain = 0 resolves to
/// the pool default, then to the automatic n / 64 policy).
size_t ResolveGrain(size_t n, size_t grain, const ThreadPool* pool);

/// Chunked parallel loop over [0, n). `body(begin, end, chunk)` processes
/// items [begin, end) of chunk index `chunk`; its non-OK Status cancels
/// the remaining chunks. Returns the first (lowest-chunk) error, or the
/// RunContext trip Status when the governor fires mid-loop.
Status ParallelFor(ThreadPool* pool, size_t n, size_t grain,
                   const RunContext* run_ctx,
                   const std::function<Status(size_t, size_t, size_t)>& body);

/// Map-reduce over [0, n): `map(begin, end, chunk, &acc)` folds a chunk
/// into a default-constructed T, then `reduce(out, &acc)` combines the
/// per-chunk accumulators into *out in ascending chunk order — so
/// floating-point reductions are deterministic for a fixed grain.
template <typename T, typename MapFn, typename ReduceFn>
Status ParallelReduce(ThreadPool* pool, size_t n, size_t grain,
                      const RunContext* run_ctx, T* out, const MapFn& map,
                      const ReduceFn& reduce) {
  if (n == 0) return Status::OK();
  const size_t g = ResolveGrain(n, grain, pool);
  const size_t num_chunks = (n + g - 1) / g;
  std::vector<T> partials(num_chunks);
  VL_RETURN_NOT_OK(ParallelFor(
      pool, n, grain, run_ctx, [&](size_t begin, size_t end, size_t chunk) {
        return map(begin, end, chunk, &partials[chunk]);
      }));
  for (size_t c = 0; c < num_chunks; ++c) reduce(out, &partials[c]);
  return Status::OK();
}

}  // namespace vadalink
