// Minimal RFC-4180-ish CSV codec used for property-graph import/export and
// experiment result dumps. Handles quoting, embedded commas/newlines and
// escaped quotes; does not attempt charset detection.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vadalink {

/// A parsed CSV document with per-row provenance: row_lines[i] is the
/// 1-based line the i-th row starts on (quoted fields may span lines, so
/// row index and line number diverge) — loaders use it to report errors
/// against the source file.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
  std::vector<size_t> row_lines;
};

/// Parses a full CSV document into rows of fields.
///
/// Quoted fields may contain commas, doubled quotes and newlines. A trailing
/// newline does not produce an empty final row. Malformed input (stray or
/// unterminated quote) fails with kParseError naming the offending line.
Result<CsvDocument> ParseCsvDocument(std::string_view text);

/// ParseCsvDocument without the line map.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Encodes one row, quoting fields that require it.
std::string EncodeCsvRow(const std::vector<std::string>& fields);

/// Reads and parses a CSV file from disk (with the line map). Fails with
/// kIoError on open/read failure, kParseError (with line number) on
/// malformed content. Fault site: "csv.read_file".
Result<CsvDocument> ReadCsvDocument(const std::string& path);

/// ReadCsvDocument without the line map.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to a CSV file, overwriting it. Flushes and verifies the
/// stream so a full disk surfaces as kIoError, not silent truncation.
/// Fault site: "csv.write_file".
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace vadalink
