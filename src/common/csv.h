// Minimal RFC-4180-ish CSV codec used for property-graph import/export and
// experiment result dumps. Handles quoting, embedded commas/newlines and
// escaped quotes; does not attempt charset detection.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace vadalink {

/// Parses a full CSV document into rows of fields.
///
/// Quoted fields may contain commas, doubled quotes and newlines. A trailing
/// newline does not produce an empty final row.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Encodes one row, quoting fields that require it.
std::string EncodeCsvRow(const std::vector<std::string>& fields);

/// Reads and parses a CSV file from disk.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// Writes rows to a CSV file, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace vadalink
