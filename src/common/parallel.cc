#include "common/parallel.h"

#include <algorithm>

namespace vadalink {

namespace {

/// Pool the current thread is executing a chunk for (worker or caller);
/// used to run nested ParallelFor calls inline instead of deadlocking on
/// the single job slot.
thread_local const ThreadPool* g_active_pool = nullptr;

class ActivePoolScope {
 public:
  explicit ActivePoolScope(const ThreadPool* pool) : saved_(g_active_pool) {
    g_active_pool = pool;
  }
  ~ActivePoolScope() { g_active_pool = saved_; }

 private:
  const ThreadPool* saved_;
};

}  // namespace

size_t ParallelOptions::EffectiveThreads() const {
  if (threads != 0) return threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

Status ParallelOptions::Validate() const {
  constexpr size_t kMaxThreads = 4096;
  if (threads > kMaxThreads) {
    return Status::InvalidArgument(
        "ParallelOptions.threads = " + std::to_string(threads) +
        " exceeds the sanity cap of " + std::to_string(kMaxThreads));
  }
  if (grain > (size_t{1} << 32)) {
    return Status::InvalidArgument(
        "ParallelOptions.grain = " + std::to_string(grain) +
        " exceeds the sanity cap of 2^32");
  }
  return Status::OK();
}

std::unique_ptr<ThreadPool> MakeThreadPool(const ParallelOptions& options) {
  size_t threads = options.EffectiveThreads();
  if (threads <= 1) return nullptr;
  return std::make_unique<ThreadPool>(threads, options.grain);
}

ThreadPool::ThreadPool(size_t threads, size_t default_grain)
    : thread_count_(threads < 1 ? 1 : threads),
      default_grain_(default_grain) {
  workers_.reserve(thread_count_ - 1);
  for (size_t i = 0; i + 1 < thread_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(size_t num_chunks,
                           const std::function<void(size_t)>& fn) {
  if (num_chunks == 0) return;
  if (workers_.empty() || num_chunks == 1 || g_active_pool == this) {
    // Single-threaded pool, trivial job, or a nested call from inside one
    // of our own chunks: run inline.
    ActivePoolScope scope(this);
    for (size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = ++job_gen_;
    job_fn_ = &fn;
    job_chunks_ = num_chunks;
    completed_.store(0, std::memory_order_relaxed);
    claim_.store(gen << 32, std::memory_order_release);
  }
  work_cv_.notify_all();
  {
    ActivePoolScope scope(this);
    DrainChunks(gen, num_chunks, fn);
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return completed_.load(std::memory_order_acquire) == num_chunks;
    });
    // Deregister so a late-waking worker does not pick the finished job
    // up again; `fn` (caller stack) must not be touched past this point.
    job_fn_ = nullptr;
  }
}

void ThreadPool::DrainChunks(uint64_t gen, size_t num_chunks,
                             const std::function<void(size_t)>& fn) {
  for (;;) {
    uint64_t cur = claim_.load(std::memory_order_acquire);
    if ((cur >> 32) != gen) return;  // superseded by a newer job
    size_t chunk = static_cast<size_t>(cur & 0xffffffffULL);
    if (chunk >= num_chunks) return;  // every chunk already claimed
    if (!claim_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel)) {
      continue;
    }
    fn(chunk);
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_chunks) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(size_t)>* fn = nullptr;
    uint64_t gen = 0;
    size_t chunks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_fn_ != nullptr && job_gen_ != seen);
      });
      if (stop_) return;
      fn = job_fn_;
      gen = job_gen_;
      chunks = job_chunks_;
      seen = gen;
    }
    ActivePoolScope scope(this);
    DrainChunks(gen, chunks, *fn);
  }
}

size_t ResolveGrain(size_t n, size_t grain, const ThreadPool* pool) {
  if (grain == 0 && pool != nullptr) grain = pool->default_grain();
  if (grain == 0) grain = n / 64;  // thread-count independent default
  return grain == 0 ? 1 : grain;
}

Status ParallelFor(
    ThreadPool* pool, size_t n, size_t grain, const RunContext* run_ctx,
    const std::function<Status(size_t, size_t, size_t)>& body) {
  if (n == 0) return Status::OK();
  const size_t g = ResolveGrain(n, grain, pool);
  const size_t num_chunks = (n + g - 1) / g;

  if (pool == nullptr || pool->thread_count() <= 1 || num_chunks == 1) {
    for (size_t c = 0; c < num_chunks; ++c) {
      VL_RETURN_NOT_OK(CheckRunNow(run_ctx));
      VL_RETURN_NOT_OK(body(c * g, std::min(n, c * g + g), c));
    }
    return Status::OK();
  }

  std::vector<Status> statuses(num_chunks);
  std::atomic<bool> failed{false};
  pool->RunChunks(num_chunks, [&](size_t c) {
    if (failed.load(std::memory_order_relaxed)) return;  // cancelled
    Status st = CheckRunNow(run_ctx);
    if (st.ok()) st = body(c * g, std::min(n, c * g + g), c);
    if (!st.ok()) {
      statuses[c] = std::move(st);
      failed.store(true, std::memory_order_relaxed);
    }
  });
  for (size_t c = 0; c < num_chunks; ++c) {
    if (!statuses[c].ok()) return statuses[c];
  }
  return Status::OK();
}

}  // namespace vadalink
