#include "common/fault_injection.h"

#include <mutex>
#include <unordered_map>

namespace vadalink {

namespace {

/// SplitMix64 — a tiny deterministic stream for probabilistic specs.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct SiteState {
  bool armed = false;
  FaultSpec spec;
  uint64_t hits = 0;   // passes through the site (armed or merely visited)
  uint64_t fires = 0;  // injections delivered
  uint64_t rng = 0;    // SplitMix64 state, seeded from spec.seed
};

std::mutex& RegistryMutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<std::string, SiteState>& Registry() {
  static auto* r = new std::unordered_map<std::string, SiteState>();
  return *r;
}

}  // namespace

std::atomic<int> FaultInjection::armed_count_{0};

void FaultInjection::Arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  SiteState& st = Registry()[site];
  if (!st.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  st.armed = true;
  st.rng = spec.seed;
  st.spec = std::move(spec);
  st.hits = 0;
  st.fires = 0;
}

void FaultInjection::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(site);
  if (it != Registry().end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjection::Reset() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [site, st] : Registry()) {
    if (st.armed) armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  Registry().clear();
}

uint64_t FaultInjection::HitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

uint64_t FaultInjection::FireCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.fires;
}

Status FaultInjection::Check(const char* site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  SiteState& st = Registry()[site];
  uint64_t hit = st.hits++;
  if (!st.armed) return Status::OK();
  if (hit < st.spec.skip) return Status::OK();
  if (st.fires >= st.spec.max_fires) return Status::OK();
  if (st.spec.probability < 1.0) {
    double roll = static_cast<double>(SplitMix64(&st.rng) >> 11) *
                  (1.0 / 9007199254740992.0);  // [0, 1)
    if (roll >= st.spec.probability) return Status::OK();
  }
  ++st.fires;
  switch (st.spec.code) {
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(st.spec.message);
    case StatusCode::kNotFound:
      return Status::NotFound(st.spec.message);
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(st.spec.message);
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(st.spec.message);
    case StatusCode::kParseError:
      return Status::ParseError(st.spec.message);
    case StatusCode::kIoError:
      return Status::IoError(st.spec.message);
    case StatusCode::kUnsupported:
      return Status::Unsupported(st.spec.message);
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(st.spec.message);
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(st.spec.message);
    case StatusCode::kCancelled:
      return Status::Cancelled(st.spec.message);
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(st.spec.message);
    case StatusCode::kOk:
    case StatusCode::kInternal:
      return Status::Internal(st.spec.message);
  }
  return Status::Internal(st.spec.message);
}

}  // namespace vadalink
