// RunContext — the run-budget governor threaded through every long-running
// stage of the pipeline (chase fixpoint, node2vec/skip-gram/k-means,
// blocking, path enumeration, the Augment loop).
//
// A context carries three independent limits, all optional:
//  * a wall-clock deadline (steady_clock),
//  * a work budget in abstract units (the engine charges one unit per
//    derived fact, Augment one per compared pair, node2vec one per walk,
//    k-means one per Lloyd iteration),
//  * a cooperative cancellation flag, settable from another thread.
//
// Stages poll with Check(): cancellation and budget are inspected on every
// call (two relaxed atomic loads), the clock only every kClockStride calls,
// so a Check() in a per-tuple loop costs a few nanoseconds amortized.
// A tripped limit surfaces as kCancelled / kResourceExhausted /
// kDeadlineExceeded and is sticky: every later Check() keeps failing.
//
// Contexts nest: a child constructed with set_parent() enforces its own
// (tighter) limits *and* the whole ancestor chain, which is how Augment
// gives the embedding stage a per-round sub-deadline that can expire
// without sinking the run. Work consumed through a child is also charged
// to its ancestors.
//
// A null `const RunContext*` means "unlimited" everywhere; use the
// CheckRun()/ConsumeRunWork() helpers to make that case free.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "common/status.h"

namespace vadalink {

class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// How many Check() calls share one clock read.
  static constexpr uint32_t kClockStride = 64;
  static constexpr uint64_t kNoBudget = std::numeric_limits<uint64_t>::max();

  RunContext() = default;
  // Not copyable/movable: stages hold pointers to a live context and the
  // counters are shared state.
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // ---- configuration (set before handing the pointer to a stage) ---------

  void set_deadline(Clock::time_point t) {
    deadline_ = t;
    has_deadline_ = true;
  }
  void set_deadline_after_ms(int64_t ms) {
    set_deadline(Clock::now() + std::chrono::milliseconds(ms));
  }
  bool has_deadline() const { return has_deadline_; }
  /// Seconds until the deadline (negative if past); +inf without one.
  double remaining_seconds() const;

  /// 0 work units allowed is a valid (immediately exhausted) budget;
  /// kNoBudget (the default) disables the check.
  void set_work_budget(uint64_t units) { work_budget_ = units; }
  uint64_t work_budget() const { return work_budget_; }
  uint64_t work_used() const {
    return work_used_.load(std::memory_order_relaxed);
  }

  /// Chains this context under `parent`: Check() also enforces every
  /// ancestor, and ConsumeWork() charges them too.
  void set_parent(const RunContext* parent) { parent_ = parent; }

  // ---- runtime ------------------------------------------------------------

  /// Thread-safe; the running stage notices at its next Check().
  void RequestCancel() { cancel_.store(true, std::memory_order_relaxed); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_relaxed);
  }

  /// Amortized poll: cancellation + budget every call, clock every
  /// kClockStride calls (the first call always reads the clock).
  Status Check() const {
    uint32_t tick = tick_.fetch_add(1, std::memory_order_relaxed);
    return CheckImpl(tick % kClockStride == 0);
  }

  /// Full poll including the clock. Use at coarse boundaries (stratum,
  /// round, stage) where a stale clock would delay the trip too long.
  Status CheckNow() const { return CheckImpl(true); }

  /// Charges `units` to this context and every ancestor, then polls.
  Status ConsumeWork(uint64_t units) const {
    for (const RunContext* c = this; c != nullptr; c = c->parent_) {
      c->work_used_.fetch_add(units, std::memory_order_relaxed);
    }
    return Check();
  }

 private:
  Status CheckImpl(bool read_clock) const;

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  uint64_t work_budget_ = kNoBudget;
  const RunContext* parent_ = nullptr;
  std::atomic<bool> cancel_{false};
  mutable std::atomic<uint64_t> work_used_{0};
  mutable std::atomic<uint32_t> tick_{0};
};

/// Null-tolerant helpers: a nullptr context is unlimited and costs nothing.
inline Status CheckRun(const RunContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->Check();
}
inline Status CheckRunNow(const RunContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->CheckNow();
}
inline Status ConsumeRunWork(const RunContext* ctx, uint64_t units) {
  return ctx == nullptr ? Status::OK() : ctx->ConsumeWork(units);
}

}  // namespace vadalink
