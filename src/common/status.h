// Status / Result<T>: error handling without exceptions across public API
// boundaries, following the Arrow/RocksDB idiom.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace vadalink {

/// Error category carried by a non-OK Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kIoError,
  kUnsupported,
  kInternal,
  /// A RunContext wall-clock deadline expired before the operation finished.
  kDeadlineExceeded,
  /// A resource limit (fact/work budget, path cap, iteration cap) was hit.
  kResourceExhausted,
  /// Cooperative cancellation was requested via RunContext::RequestCancel().
  kCancelled,
  /// The operation requires state the system no longer holds (e.g. a
  /// continuation over facts the streaming chase already evicted).
  kFailedPrecondition,
};

/// Returns a human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: OK, or an error code plus message.
///
/// A Status is cheap to copy when OK (single enum); error messages are
/// heap-allocated only on the failure path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit from value (success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT
  /// Implicit from non-OK Status (failure path).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates a non-OK status to the caller.
#define VL_RETURN_NOT_OK(expr)              \
  do {                                      \
    ::vadalink::Status _st = (expr);        \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define VL_ASSIGN_OR_RETURN(lhs, expr)      \
  auto VL_CONCAT_(_res_, __LINE__) = (expr);          \
  if (!VL_CONCAT_(_res_, __LINE__).ok())              \
    return VL_CONCAT_(_res_, __LINE__).status();      \
  lhs = std::move(VL_CONCAT_(_res_, __LINE__)).value()

#define VL_CONCAT_IMPL_(a, b) a##b
#define VL_CONCAT_(a, b) VL_CONCAT_IMPL_(a, b)

}  // namespace vadalink
