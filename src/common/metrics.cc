#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/run_context.h"

namespace vadalink {

namespace {

/// Per-thread span nesting stack: pointers into live ScopedSpan paths.
thread_local std::vector<const std::string*> g_span_stack;

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendKey(std::string* out, std::string_view key) {
  *out += '"';
  AppendEscaped(out, key);
  *out += "\":";
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

/// Shortest round-trip double formatting: stable for equal inputs.
void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double reparsed = 0.0;
  std::sscanf(buf, "%lf", &reparsed);
  for (int prec = 6; prec < 17; ++prec) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%.*g", prec, v);
    std::sscanf(shorter, "%lf", &reparsed);
    if (reparsed == v) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

}  // namespace

uint64_t MetricsHistogram::BucketUpperBound(size_t i) {
  if (i == 0) return 0;
  if (i >= kBuckets - 1) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

uint64_t MetricsHistogram::count() const {
  uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

MetricsCounter* MetricsRegistry::Counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<MetricsCounter>())
             .first;
  }
  return it->second.get();
}

MetricsGauge* MetricsRegistry::Gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<MetricsGauge>())
             .first;
  }
  return it->second.get();
}

MetricsHistogram* MetricsRegistry::Histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<MetricsHistogram>())
             .first;
  }
  return it->second.get();
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

double MetricsRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second->value();
}

SpanStats MetricsRegistry::SpanValue(std::string_view path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = spans_.find(path);
  return it == spans_.end() ? SpanStats{} : it->second;
}

void MetricsRegistry::RecordSpan(const std::string& path, uint64_t micros,
                                 const RunContext* run_ctx) {
  StatusCode trip = StatusCode::kOk;
  if (run_ctx != nullptr) trip = run_ctx->CheckNow().code();
  std::lock_guard<std::mutex> lock(mu_);
  SpanStats& s = spans_[path];
  ++s.count;
  s.total_micros += micros;
  switch (trip) {
    case StatusCode::kDeadlineExceeded: ++s.deadline_hits; break;
    case StatusCode::kResourceExhausted: ++s.budget_trips; break;
    case StatusCode::kCancelled: ++s.cancellations; break;
    default: break;
  }
}

std::string MetricsRegistry::ToJson(const MetricsJsonOptions& options) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    AppendKey(&out, name);
    AppendU64(&out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    AppendKey(&out, name);
    AppendDouble(&out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    // "*.us" histograms are wall-clock derived; emit only on request so
    // the default document stays byte-stable run-to-run.
    if (!options.include_timings && name.size() >= 3 &&
        name.compare(name.size() - 3, 3, ".us") == 0) {
      continue;
    }
    if (!first) out += ',';
    first = false;
    AppendKey(&out, name);
    out += "{\"count\":";
    AppendU64(&out, h->count());
    out += ",\"sum\":";
    AppendU64(&out, h->sum());
    out += ",\"buckets\":[";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < MetricsHistogram::kBuckets; ++i) {
      if (i > 0) out += ',';
      cumulative += h->bucket(i);
      AppendU64(&out, cumulative);
    }
    out += "]}";
  }
  out += "},\"spans\":{";
  first = true;
  for (const auto& [path, s] : spans_) {
    if (!first) out += ',';
    first = false;
    AppendKey(&out, path);
    out += "{\"count\":";
    AppendU64(&out, s.count);
    out += ",\"deadline_hits\":";
    AppendU64(&out, s.deadline_hits);
    out += ",\"budget_trips\":";
    AppendU64(&out, s.budget_trips);
    out += ",\"cancellations\":";
    AppendU64(&out, s.cancellations);
    if (options.include_timings) {
      out += ",\"us\":";
      AppendU64(&out, s.total_micros);
    }
    out += '}';
  }
  out += "}}";
  return out;
}

Status MetricsRegistry::WriteJsonFile(const std::string& path,
                                      const MetricsJsonOptions& options) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << ToJson(options) << '\n';
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string MetricsRegistry::TraceReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [path, s] : spans_) {
    size_t depth = 0;
    size_t name_start = 0;
    for (size_t i = 0; i < path.size(); ++i) {
      if (path[i] == '/') {
        ++depth;
        name_start = i + 1;
      }
    }
    out.append(2 * depth, ' ');
    out += path.substr(name_start);
    char buf[128];
    std::snprintf(buf, sizeof(buf), "  count=%" PRIu64 " wall=%.3fms",
                  s.count, static_cast<double>(s.total_micros) / 1e3);
    out += buf;
    if (s.deadline_hits > 0) {
      std::snprintf(buf, sizeof(buf), " deadline_hits=%" PRIu64,
                    s.deadline_hits);
      out += buf;
    }
    if (s.budget_trips > 0) {
      std::snprintf(buf, sizeof(buf), " budget_trips=%" PRIu64,
                    s.budget_trips);
      out += buf;
    }
    if (s.cancellations > 0) {
      std::snprintf(buf, sizeof(buf), " cancellations=%" PRIu64,
                    s.cancellations);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

ScopedSpan::ScopedSpan(MetricsRegistry* reg, std::string_view name,
                       const RunContext* run_ctx)
    : reg_(reg), run_ctx_(run_ctx) {
  if (reg_ == nullptr) return;
  if (!g_span_stack.empty()) {
    path_ = *g_span_stack.back();
    path_ += '/';
  }
  path_ += name;
  g_span_stack.push_back(&path_);
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (reg_ == nullptr) return;
  auto elapsed = std::chrono::steady_clock::now() - start_;
  uint64_t micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  g_span_stack.pop_back();
  reg_->RecordSpan(path_, micros, run_ctx_);
  reg_->Histogram(path_ + ".us")->Record(micros);
}

}  // namespace vadalink
