// Hashing helpers shared across the fact store, blocking functions and the
// Skolem registry.
#pragma once

#include <cstdint>
#include <string_view>

namespace vadalink {

/// FNV-1a 64-bit hash of a byte string.
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Mixes a new 64-bit value into an accumulated hash (boost::hash_combine
/// style with a 64-bit constant).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  seed ^= v + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4);
  return seed;
}

/// Final avalanche (MurmurHash3 fmix64): spreads low-entropy inputs.
inline uint64_t HashFinalize(uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace vadalink
