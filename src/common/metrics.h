// Metrics & tracing — the observability layer of the pipeline.
//
// A MetricsRegistry holds three kinds of named instruments plus a span
// tree, all thread-safe and cheap enough for per-item hot loops:
//
//  * Counter   — monotonic uint64, relaxed atomic adds. Counters measure
//    *work* (facts derived, pairs scored, walks generated), so their
//    totals are thread-count invariant whenever the work itself is.
//  * Gauge     — last-written double (k-means inertia, effective k, ...).
//  * Histogram — fixed log2-scale buckets (bucket i counts values whose
//    bit width is i, i.e. upper bounds 0, 1, 3, 7, ..., 2^k-1). Used both
//    for value distributions (block sizes, chase delta sizes) and, via
//    ScopedSpan, for span latencies in microseconds.
//
// Instrument pointers returned by the registry are stable for its
// lifetime: resolve once outside the loop, then Add() costs one relaxed
// atomic RMW (the <= 2% overhead budget of DESIGN.md section 8).
//
// ScopedSpan is the tracer: an RAII stage marker that nests via a
// thread-local path stack ("augment/round0/embed/walks"), times the stage
// into "<path>.us" histograms, and — given the stage's RunContext —
// records governor trips (deadline hits, budget trips, cancellations)
// observed while the span was open. Spans are created by the sequential
// orchestration code, never inside pool workers, so the span tree is
// deterministic; worker counts reach the registry through the pipeline's
// existing chunk-ordered merges (or through commutative counter adds,
// whose totals are order-independent).
//
// ToJson() emits the single stable-schema document shared by
// `--metrics-json` and the bench harnesses: keys sorted, counters exact,
// histogram buckets cumulative (monotone non-decreasing). Wall-clock
// fields (span microseconds, latency histograms) are gated behind
// JsonOptions.include_timings so the default document is byte-stable
// across runs for a deterministic pipeline (fixed seed, threads = 1).
//
// A null `MetricsRegistry*` disables everything; use the Metric*()
// helpers (or guard on nullptr) to make that case free.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace vadalink {

class RunContext;

/// Monotonic counter. Add() is a relaxed atomic RMW; the total is exact
/// regardless of thread interleaving (addition commutes).
class MetricsCounter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-written double value.
class MetricsGauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2-bucketed histogram: bucket i counts recorded values v with
/// bit_width(v) == i (bucket 0 holds v == 0, the last bucket is a
/// catch-all). Record() is two relaxed RMWs; count and sum are exact.
class MetricsHistogram {
 public:
  static constexpr size_t kBuckets = 33;

  void Record(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  /// Bucket index for a value: 0 for 0, else min(bit_width, kBuckets-1).
  static size_t BucketOf(uint64_t v) {
    size_t w = static_cast<size_t>(std::bit_width(v));
    return w < kBuckets ? w : kBuckets - 1;
  }
  /// Inclusive upper bound of bucket i (2^i - 1; ~0 for the catch-all).
  static uint64_t BucketUpperBound(size_t i);

  uint64_t count() const;
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// Aggregated observations of one span path across all of its openings.
struct SpanStats {
  uint64_t count = 0;
  uint64_t total_micros = 0;
  /// Governor trips observed at span close (per RunContext status code).
  uint64_t deadline_hits = 0;
  uint64_t budget_trips = 0;
  uint64_t cancellations = 0;
};

/// Emission knobs for MetricsRegistry::ToJson().
struct MetricsJsonOptions {
  /// Include wall-clock-derived fields (span "us" totals and every
  /// "*.us" histogram). Off by default: the default document is
  /// byte-stable run-to-run for a deterministic pipeline and safe to
  /// diff in CI; timings are opt-in (--metrics-wall).
  bool include_timings = false;
};

/// Thread-safe registry of named instruments plus the span tree.
///
/// Instrument resolution (Counter/Gauge/Histogram) takes a mutex; the
/// returned pointers are stable for the registry's lifetime and all
/// updates through them are lock-free. Metric names use dotted
/// lower-case ("linkage.pairs.scored"); span paths use '/' nesting
/// ("augment/round0/embed"). See DESIGN.md section 8 for the catalog.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  MetricsCounter* Counter(std::string_view name);
  MetricsGauge* Gauge(std::string_view name);
  MetricsHistogram* Histogram(std::string_view name);

  /// Snapshot reads for tests and report code; 0 / absent-safe.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;
  /// Span stats for an exact path; zeroed stats when never opened.
  SpanStats SpanValue(std::string_view path) const;

  /// Called by ScopedSpan at close; public so custom harnesses can feed
  /// externally-timed stages into the same tree.
  void RecordSpan(const std::string& path, uint64_t micros,
                  const RunContext* run_ctx);

  /// The stable-schema JSON document (see DESIGN.md section 8):
  /// {"schema_version":1,"counters":{...},"gauges":{...},
  ///  "histograms":{name:{"count","sum","buckets":[cumulative...]}},
  ///  "spans":{path:{"count","deadline_hits","budget_trips",
  ///                 "cancellations"[,"us"]}}}
  /// Keys are sorted; buckets are cumulative (monotone non-decreasing).
  std::string ToJson(const MetricsJsonOptions& options = {}) const;

  /// ToJson() to a file (trailing newline added).
  Status WriteJsonFile(const std::string& path,
                       const MetricsJsonOptions& options = {}) const;

  /// Human-readable span tree (indented by path depth, '/'-ordered),
  /// with per-span wall time and trip counts. For --trace output.
  std::string TraceReport() const;

 private:
  mutable std::mutex mu_;
  // std::map keeps keys sorted, which is what makes emission stable.
  std::map<std::string, std::unique_ptr<MetricsCounter>, std::less<>>
      counters_;
  std::map<std::string, std::unique_ptr<MetricsGauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<MetricsHistogram>, std::less<>>
      histograms_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

/// Null-tolerant helpers: a nullptr registry records nothing, costs one
/// branch.
inline void MetricAdd(MetricsRegistry* reg, std::string_view name,
                      uint64_t n) {
  if (reg != nullptr) reg->Counter(name)->Add(n);
}
inline void MetricSet(MetricsRegistry* reg, std::string_view name, double v) {
  if (reg != nullptr) reg->Gauge(name)->Set(v);
}
inline void MetricRecord(MetricsRegistry* reg, std::string_view name,
                         uint64_t v) {
  if (reg != nullptr) reg->Histogram(name)->Record(v);
}

/// RAII stage marker: opens a nested span on construction, records its
/// duration and governor trips on destruction.
///
/// Nesting is per-thread: a span opened while another is open on the same
/// thread gets the parent's path as a prefix ("augment/round0/embed").
/// Create spans only from orchestration code (never inside ParallelFor
/// bodies) so paths stay deterministic.
class ScopedSpan {
 public:
  /// `run_ctx` (optional) is polled once at close: a tripped governor is
  /// attributed to this span (deadline_hits / budget_trips /
  /// cancellations). A null registry makes the span free.
  ScopedSpan(MetricsRegistry* reg, std::string_view name,
             const RunContext* run_ctx = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Full '/'-joined path of this span.
  const std::string& path() const { return path_; }

 private:
  MetricsRegistry* reg_;
  const RunContext* run_ctx_;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vadalink
