// Collateral eligibility screening over a synthetic company register: the
// regulatory workflow that motivates close links in the paper. Generates a
// register, detects families, and screens a batch of (borrower, guarantor)
// pairs, reporting the verdict and the reason for each rejection.
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "company/company_graph.h"
#include "company/eligibility.h"
#include "company/family.h"
#include "gen/register_simulator.h"

using namespace vadalink;

int main(int argc, char** argv) {
  gen::RegisterConfig cfg;
  cfg.persons = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 600;
  cfg.companies = cfg.persons * 3 / 4;
  cfg.seed = 99;
  auto data = gen::GenerateRegister(cfg);
  std::printf("register: %zu persons, %zu companies, %zu shareholdings\n",
              data.persons.size(), data.companies.size(),
              data.graph.edge_count());

  auto cg_result = company::CompanyGraph::FromPropertyGraph(data.graph);
  if (!cg_result.ok()) {
    std::fprintf(stderr, "error: %s\n", cg_result.status().ToString().c_str());
    return 1;
  }
  const company::CompanyGraph& cg = *cg_result;

  // Detect families first: the screening uses them for the "low risk
  // differentiation" flag of the paper's introduction.
  linkage::BayesLinkClassifier classifier(company::DefaultPersonSchema());
  linkage::Blocker blocker(company::DefaultPersonBlocking());
  auto person_links = company::DetectPersonLinks(
      data.graph, data.persons, classifier, &blocker);
  auto families =
      company::FamilyGroups(person_links, data.graph.node_count());
  std::printf("detected %zu person links forming %zu families\n\n",
              person_links.size(), families.size());

  company::EligibilityConfig screen_cfg;
  screen_cfg.families = families;

  // Screen a random batch of borrower/guarantor pairs plus every pair that
  // shares an owner (where rejections concentrate).
  Rng rng(7);
  size_t screened = 0, eligible = 0, close_link = 0, family_flag = 0;
  auto screen = [&](graph::NodeId x, graph::NodeId y) {
    if (x == y) return;
    auto decision = company::ScreenGuarantor(cg, x, y, screen_cfg);
    ++screened;
    switch (decision.verdict) {
      case company::EligibilityVerdict::kEligible:
        ++eligible;
        break;
      case company::EligibilityVerdict::kIneligibleCloseLink:
        ++close_link;
        if (close_link <= 5) {
          std::printf("REJECT  borrower=%u guarantor=%u: %s\n", x, y,
                      decision.explanation.c_str());
        }
        break;
      case company::EligibilityVerdict::kFlaggedFamilyCloseLink:
        ++family_flag;
        if (family_flag <= 5) {
          std::printf("FLAG    borrower=%u guarantor=%u: %s\n", x, y,
                      decision.explanation.c_str());
        }
        break;
    }
  };

  // Pairs sharing a common owner.
  for (graph::NodeId z = 0; z < cg.node_count() && screened < 400; ++z) {
    const auto& holdings = cg.holdings(z);
    for (size_t i = 0; i < holdings.size(); ++i) {
      for (size_t j = i + 1; j < holdings.size(); ++j) {
        screen(holdings[i].dst, holdings[j].dst);
      }
    }
  }
  // Random pairs.
  while (screened < 800) {
    graph::NodeId x =
        data.companies[rng.UniformU64(data.companies.size())];
    graph::NodeId y =
        data.companies[rng.UniformU64(data.companies.size())];
    screen(x, y);
  }

  std::printf(
      "\nscreened %zu pairs: %zu eligible, %zu rejected (close link), "
      "%zu flagged (family tie)\n",
      screened, eligible, close_link, family_flag);
  return 0;
}
