// A tiny interactive shell for the Datalog± engine: type rules and facts,
// end with a blank line to evaluate, then query predicates. Demonstrates
// the reasoning substrate in isolation.
//
// Usage:
//   vadalog_repl [program.vada]     # optionally preload a program file
//
// Commands at the prompt:
//   <rule or fact>        add to the pending program (multi-line OK)
//   (empty line)          run the pending program
//   ?pred                 print all tuples of a predicate
//   :stats                engine statistics of the last run
//   :load pred file.csv   import facts from CSV
//   :save pred file.csv   export a predicate to CSV
//   :warded               wardedness report of all rules entered so far
//   :quit                 exit
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "datalog/engine.h"
#include "datalog/parser.h"
#include "datalog/relation_io.h"
#include "datalog/warded.h"

using namespace vadalink;
using namespace vadalink::datalog;

namespace {

void PrintTuples(const Database& db, const std::string& pred) {
  RelationScan tuples = db.Scan(pred);
  if (tuples.empty()) {
    std::printf("  (no tuples)\n");
    return;
  }
  for (RowRef t : tuples) {
    std::string line = "  " + pred + "(";
    for (size_t i = 0; i < t.size(); ++i) {
      if (i > 0) line += ", ";
      line += t[i].ToString(db.catalog()->symbols);
    }
    std::printf("%s)\n", line.c_str());
  }
  std::printf("  %zu tuple(s)\n", tuples.size());
}

}  // namespace

int main(int argc, char** argv) {
  Catalog catalog;
  Database db(&catalog);
  EngineOptions opts;
  opts.trace_provenance = true;
  Engine engine(&db, opts);

  std::string pending;
  Program all_rules;  // accumulated for :warded
  auto run_pending = [&]() {
    if (pending.empty()) return;
    auto program = ParseProgram(pending, &catalog);
    if (!program.ok()) {
      std::printf("parse error: %s\n", program.status().ToString().c_str());
      pending.clear();
      return;
    }
    for (const auto& r : program->rules) all_rules.rules.push_back(r);
    Status st = engine.Run(*program);
    if (!st.ok()) {
      std::printf("engine error: %s\n", st.ToString().c_str());
    } else {
      std::printf("ok: %zu facts derived (db now holds %zu facts)\n",
                  engine.stats().facts_derived, db.TotalFacts());
    }
    pending.clear();
  };

  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    pending = ss.str();
    std::printf("loaded %s\n", argv[1]);
    run_pending();
  }

  std::printf("vadalog> enter rules/facts; blank line runs; ?pred queries; "
              ":quit exits\n");
  std::string line;
  while (true) {
    std::printf(pending.empty() ? "vadalog> " : "     ... ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (line == ":quit" || line == ":q") break;
    if (line == ":stats") {
      const auto& s = engine.stats();
      std::printf("  strata=%zu iterations=%zu matches=%zu derived=%zu "
                  "nulls=%zu\n",
                  s.strata, s.iterations, s.body_matches, s.facts_derived,
                  s.nulls_invented);
      continue;
    }
    if (line.rfind(":load ", 0) == 0 || line.rfind(":save ", 0) == 0) {
      run_pending();
      std::istringstream ss(line.substr(6));
      std::string pred, file;
      ss >> pred >> file;
      if (pred.empty() || file.empty()) {
        std::printf("usage: %s pred file.csv\n", line.substr(0, 5).c_str());
        continue;
      }
      if (line[1] == 'l') {
        auto n = LoadRelationCsv(&db, pred, file);
        if (n.ok()) {
          std::printf("  loaded %zu new fact(s) into %s\n", *n,
                      pred.c_str());
        } else {
          std::printf("  %s\n", n.status().ToString().c_str());
        }
      } else {
        Status st = SaveRelationCsv(db, pred, file);
        std::printf("  %s\n", st.ToString().c_str());
      }
      continue;
    }
    if (line == ":warded") {
      run_pending();
      auto report = AnalyzeWardedness(all_rules, catalog);
      std::printf("%s", report.ToString(catalog, all_rules).c_str());
      continue;
    }
    if (!line.empty() && line[0] == '?') {
      run_pending();
      PrintTuples(db, line.substr(1));
      continue;
    }
    if (line.empty()) {
      run_pending();
      continue;
    }
    pending += line + "\n";
  }
  return 0;
}
