// Corporate group analysis over a 2005-2018 synthetic register panel (the
// paper's dataset is a yearly panel): per-year graph statistics, then for
// the last year the ultimate beneficial owners of hub companies, control
// pyramids, and circular cross-shareholding groups (the buy-back
// phenomenon discussed in Section 2).
#include <algorithm>
#include <cstdio>

#include "company/company_graph.h"
#include "company/groups.h"
#include "gen/evolution.h"
#include "graph/graph_algorithms.h"

using namespace vadalink;

int main(int argc, char** argv) {
  gen::EvolutionConfig cfg;
  cfg.initial.persons =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 1500;
  cfg.initial.companies = cfg.initial.persons * 3 / 4;
  cfg.initial.self_loop_rate = 0.002;
  auto panel = gen::SimulateEvolution(cfg);

  std::printf("%6s %8s %8s %8s %10s %10s\n", "year", "nodes", "edges",
              "WCCs", "largestWCC", "selfloops");
  double avg_nodes = 0, avg_edges = 0;
  for (const auto& snap : panel) {
    auto s = graph::ComputeGraphStats(snap.graph);
    std::printf("%6d %8zu %8zu %8zu %10zu %10zu\n", snap.year, s.nodes,
                s.edges, s.wcc_count, s.largest_wcc, s.self_loops);
    avg_nodes += static_cast<double>(s.nodes);
    avg_edges += static_cast<double>(s.edges);
  }
  std::printf("yearly averages: %.0f nodes, %.0f edges "
              "(the paper reports per-year averages of its 2005-2018 "
              "panel)\n\n",
              avg_nodes / panel.size(), avg_edges / panel.size());

  const auto& last = panel.back();
  auto cg_result = company::CompanyGraph::FromPropertyGraph(last.graph);
  if (!cg_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 cg_result.status().ToString().c_str());
    return 1;
  }
  const company::CompanyGraph& cg = *cg_result;

  // Ultimate beneficial owners of the three most-held companies.
  std::printf("== Ultimate beneficial owners (>= 25%% integrated), %d ==\n",
              last.year);
  std::vector<graph::NodeId> hubs(cg.companies().begin(),
                                  cg.companies().end());
  std::sort(hubs.begin(), hubs.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return cg.owners(a).size() > cg.owners(b).size();
            });
  for (size_t i = 0; i < hubs.size() && i < 3; ++i) {
    graph::NodeId target = hubs[i];
    std::printf("  %s (%zu direct shareholders):\n",
                last.graph.GetNodeProperty(target, "name")
                    .ToString()
                    .c_str(),
                cg.owners(target).size());
    auto owners = company::UltimateOwnersOf(cg, target, 0.25);
    if (owners.empty()) std::printf("    (dispersed ownership)\n");
    for (const auto& ubo : owners) {
      std::printf("    %s %s — integrated %.1f%%\n",
                  last.graph.GetNodeProperty(ubo.person, "first_name")
                      .ToString()
                      .c_str(),
                  last.graph.GetNodeProperty(ubo.person, "last_name")
                      .ToString()
                      .c_str(),
                  100.0 * ubo.integrated_ownership);
    }
  }

  // Deepest control pyramids.
  std::printf("\n== Control pyramids ==\n");
  size_t deepest = 0;
  graph::NodeId apex = graph::kInvalidNode;
  for (graph::NodeId p : cg.persons()) {
    size_t d = company::ControlPyramidDepth(cg, p);
    if (d > deepest) {
      deepest = d;
      apex = p;
    }
  }
  if (apex != graph::kInvalidNode) {
    std::printf("  deepest chain of direct majority stakes: %zu levels, "
                "apex %s %s\n",
                deepest,
                last.graph.GetNodeProperty(apex, "first_name")
                    .ToString()
                    .c_str(),
                last.graph.GetNodeProperty(apex, "last_name")
                    .ToString()
                    .c_str());
  }

  // Circular ownership.
  std::printf("\n== Circular cross-shareholding ==\n");
  auto groups = company::CircularOwnershipGroups(cg);
  size_t cycles = 0, buybacks = 0;
  for (const auto& g : groups) {
    if (g.is_buy_back) {
      ++buybacks;
    } else {
      ++cycles;
      if (cycles <= 3) {
        std::printf("  cycle of %zu companies:", g.members.size());
        for (graph::NodeId m : g.members) {
          std::printf(" '%s'",
                      last.graph.GetNodeProperty(m, "name")
                          .ToString()
                          .c_str());
        }
        std::printf("\n");
      }
    }
  }
  std::printf("  %zu cross-shareholding cycles, %zu buy-backs (companies "
              "owning their own shares)\n",
              cycles, buybacks);
  return 0;
}
