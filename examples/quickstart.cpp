// Quickstart: builds the paper's Figure 1 ownership graph, then answers the
// three questions of the introduction with both execution paths:
//   1. who controls whom (Definition 2.3),
//   2. which companies are closely linked (Definition 2.6),
//   3. what the family {P1, P2} controls once the personal link is known
//      (Definition 2.8),
// and shows the same control reasoning running declaratively on the
// Datalog± engine, with a provenance explanation.
#include <cstdio>
#include <map>
#include <string>

#include "company/close_link.h"
#include "company/company_graph.h"
#include "company/control.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "graph/property_graph.h"

using namespace vadalink;

namespace {

graph::PropertyGraph BuildFigure1(std::map<std::string, graph::NodeId>* ids,
                                  std::map<graph::NodeId, std::string>* names) {
  graph::PropertyGraph g;
  auto node = [&](const std::string& name, const char* label) {
    graph::NodeId n = g.AddNode(label);
    g.SetNodeProperty(n, "name", name);
    (*ids)[name] = n;
    (*names)[n] = name;
  };
  node("P1", "Person");
  node("P2", "Person");
  for (const char* c : {"C", "D", "E", "F", "G", "H", "I", "L"}) {
    node(c, "Company");
  }
  auto own = [&](const char* src, const char* dst, double w) {
    auto e = g.AddEdge(ids->at(src), ids->at(dst), "Shareholding");
    g.SetEdgeProperty(e.value(), "w", w);
  };
  own("P1", "C", 0.8);
  own("P1", "D", 0.75);
  own("D", "E", 0.4);
  own("P1", "E", 0.2);
  own("D", "F", 0.25);
  own("E", "F", 0.3);
  own("F", "L", 0.2);
  own("P2", "G", 0.6);
  own("G", "H", 0.6);
  own("H", "I", 0.4);
  own("P2", "I", 0.5);
  own("I", "L", 0.4);
  return g;
}

}  // namespace

int main() {
  std::map<std::string, graph::NodeId> ids;
  std::map<graph::NodeId, std::string> names;
  graph::PropertyGraph g = BuildFigure1(&ids, &names);
  std::printf("Figure 1 company graph: %zu nodes, %zu shareholding edges\n\n",
              g.node_count(), g.edge_count());

  auto cg_result = company::CompanyGraph::FromPropertyGraph(g);
  if (!cg_result.ok()) {
    std::fprintf(stderr, "error: %s\n", cg_result.status().ToString().c_str());
    return 1;
  }
  const company::CompanyGraph& cg = *cg_result;

  // ---- 1. company control -------------------------------------------------
  std::printf("== Company control (Definition 2.3) ==\n");
  for (const char* person : {"P1", "P2"}) {
    std::printf("  %s controls:", person);
    for (graph::NodeId c : company::ControlledBy(cg, ids[person])) {
      std::printf(" %s", names[c].c_str());
    }
    std::printf("\n");
  }

  // ---- 2. close links -------------------------------------------------------
  std::printf("\n== Close links (Definition 2.6, t = 0.2) ==\n");
  for (const auto& link : company::AllCloseLinks(cg)) {
    if (link.reason == company::CloseLinkReason::kCommonThirdParty) {
      std::printf("  %s -- %s   (common third party: %s)\n",
                  names[link.x].c_str(), names[link.y].c_str(),
                  names[link.via].c_str());
    } else {
      std::printf("  %s -- %s   (accumulated ownership)\n",
                  names[link.x].c_str(), names[link.y].c_str());
    }
  }

  // ---- 3. family control ------------------------------------------------------
  std::printf("\n== Family control (Definition 2.8) ==\n");
  std::printf("  knowing P1 and P2 are partners, the family controls:");
  for (graph::NodeId c :
       company::ControlledByGroup(cg, {ids["P1"], ids["P2"]})) {
    std::printf(" %s", names[c].c_str());
  }
  std::printf("\n  (note L: 20%% via F plus 40%% via I = 60%%)\n");

  // ---- 4. the same control task, declaratively ---------------------------------
  std::printf("\n== Declarative path: Algorithm 5 on the Datalog engine ==\n");
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  auto program = datalog::ParseProgram(core::ControlProgram(), &catalog);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  datalog::EngineOptions opts;
  opts.trace_provenance = true;
  datalog::Engine engine(&db, opts);
  if (auto st = engine.Run(*program); !st.ok()) {
    std::fprintf(stderr, "engine error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  derived %zu facts in %zu semi-naive iterations\n",
              engine.stats().facts_derived, engine.stats().iterations);
  for (datalog::RowRef t : db.Scan("control")) {
    std::printf("  control(%s, %s)\n",
                names[static_cast<graph::NodeId>(t[0].AsInt())].c_str(),
                names[static_cast<graph::NodeId>(t[1].AsInt())].c_str());
  }

  std::printf("\n  why does P2 control I?\n");
  uint32_t ctrl = catalog.predicates.Lookup("ctrl");
  std::string why = engine.Explain(
      ctrl, {datalog::Value::Int(ids["P2"]), datalog::Value::Int(ids["I"])});
  std::printf("%s", why.c_str());
  return 0;
}
