// Family-business discovery: the full VADA-LINK augmentation loop
// (Algorithm 1) on a synthetic register — embedding clustering, feature
// blocking, family detection, control and close links — followed by a
// report of the family businesses found (companies controlled by a family
// but by no single member alone, like company L of Figure 1).
#include <cstdio>
#include <set>

#include "company/company_graph.h"
#include "company/control.h"
#include "company/family.h"
#include "core/candidates.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"

using namespace vadalink;

int main(int argc, char** argv) {
  gen::RegisterConfig reg_cfg;
  reg_cfg.persons = argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 800;
  reg_cfg.companies = reg_cfg.persons * 2 / 3;
  reg_cfg.family_business_rate = 0.4;
  reg_cfg.seed = 4242;
  auto data = gen::GenerateRegister(reg_cfg);
  std::printf("register: %zu persons, %zu companies, %zu edges, "
              "%zu planted family links\n",
              data.persons.size(), data.companies.size(),
              data.graph.edge_count(), data.true_family_links.size());

  core::AugmentConfig cfg;
  cfg.embedding.skipgram.dimensions = 32;
  cfg.embedding.skipgram.epochs = 1;
  cfg.embedding.walk.walks_per_node = 4;
  cfg.embedding.walk.walk_length = 10;
  cfg.embedding.kmeans.k = 8;
  cfg.max_rounds = 2;
  auto vl = core::MakeDefaultVadaLink(cfg);

  auto stats = vl.Augment(&data.graph);
  if (!stats.ok()) {
    std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\naugmentation: %zu rounds, %zu links added, %zu pairs compared\n"
      "  first-level clusters: %zu, second-level blocks: %zu\n"
      "  time: embed %.2fs  block %.2fs  candidates %.2fs\n",
      stats->rounds, stats->links_added, stats->pairs_compared,
      stats->first_level_clusters, stats->second_level_blocks,
      stats->embed_seconds, stats->block_seconds,
      stats->candidate_seconds);

  // Recall against the planted ground truth.
  size_t recovered = 0;
  for (const auto& truth : data.true_family_links) {
    for (const char* label : {"PartnerOf", "ParentOf", "SiblingOf"}) {
      if (data.graph.FindEdge(truth.x, truth.y, label) !=
              graph::kInvalidEdge ||
          data.graph.FindEdge(truth.y, truth.x, label) !=
              graph::kInvalidEdge) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("family-link recall vs ground truth: %.1f%% (%zu/%zu)\n",
              100.0 * recovered / data.true_family_links.size(), recovered,
              data.true_family_links.size());

  // Family businesses: controlled by the family, by no member alone.
  auto families = core::FamiliesFromGraph(data.graph);
  auto cg = company::CompanyGraph::FromPropertyGraph(data.graph).value();
  size_t family_businesses = 0;
  for (const auto& family : families) {
    std::set<graph::NodeId> individually;
    for (graph::NodeId member : family) {
      for (graph::NodeId c : company::ControlledBy(cg, member)) {
        individually.insert(c);
      }
    }
    for (graph::NodeId c :
         company::FamilyControlledCompanies(cg, family)) {
      if (!individually.count(c)) {
        ++family_businesses;
        if (family_businesses <= 8) {
          std::printf(
              "  family business: company '%s' controlled by a %zu-member "
              "family, by no member alone\n",
              data.graph.GetNodeProperty(c, "name").ToString().c_str(),
              family.size());
        }
      }
    }
  }
  std::printf("\n%zu families detected; %zu family businesses "
              "(family-controlled, no single controller)\n",
              families.size(), family_businesses);
  return 0;
}
