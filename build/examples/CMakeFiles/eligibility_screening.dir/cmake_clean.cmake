file(REMOVE_RECURSE
  "CMakeFiles/eligibility_screening.dir/eligibility_screening.cpp.o"
  "CMakeFiles/eligibility_screening.dir/eligibility_screening.cpp.o.d"
  "eligibility_screening"
  "eligibility_screening.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eligibility_screening.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
