# Empty dependencies file for eligibility_screening.
# This may be replaced when dependencies are built.
