# Empty compiler generated dependencies file for family_business.
# This may be replaced when dependencies are built.
