file(REMOVE_RECURSE
  "CMakeFiles/family_business.dir/family_business.cpp.o"
  "CMakeFiles/family_business.dir/family_business.cpp.o.d"
  "family_business"
  "family_business.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/family_business.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
