file(REMOVE_RECURSE
  "CMakeFiles/vadalog_repl.dir/vadalog_repl.cpp.o"
  "CMakeFiles/vadalog_repl.dir/vadalog_repl.cpp.o.d"
  "vadalog_repl"
  "vadalog_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalog_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
