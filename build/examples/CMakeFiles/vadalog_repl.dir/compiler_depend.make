# Empty compiler generated dependencies file for vadalog_repl.
# This may be replaced when dependencies are built.
