file(REMOVE_RECURSE
  "CMakeFiles/group_structures.dir/group_structures.cpp.o"
  "CMakeFiles/group_structures.dir/group_structures.cpp.o.d"
  "group_structures"
  "group_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
