# Empty compiler generated dependencies file for group_structures.
# This may be replaced when dependencies are built.
