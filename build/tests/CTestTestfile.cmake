# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_engine_test[1]_include.cmake")
include("/root/repo/build/tests/linkage_test[1]_include.cmake")
include("/root/repo/build/tests/company_test[1]_include.cmake")
include("/root/repo/build/tests/embed_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_parser_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_warded_test[1]_include.cmake")
include("/root/repo/build/tests/company_groups_test[1]_include.cmake")
include("/root/repo/build/tests/knowledge_graph_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_io_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_incremental_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/misc_feature_test[1]_include.cmake")
include("/root/repo/build/tests/evaluation_test[1]_include.cmake")
include("/root/repo/build/tests/link_functions_test[1]_include.cmake")
