# Empty dependencies file for company_groups_test.
# This may be replaced when dependencies are built.
