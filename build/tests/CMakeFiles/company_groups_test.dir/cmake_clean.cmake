file(REMOVE_RECURSE
  "CMakeFiles/company_groups_test.dir/company_groups_test.cc.o"
  "CMakeFiles/company_groups_test.dir/company_groups_test.cc.o.d"
  "company_groups_test"
  "company_groups_test.pdb"
  "company_groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
