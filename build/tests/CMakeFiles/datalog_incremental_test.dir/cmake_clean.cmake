file(REMOVE_RECURSE
  "CMakeFiles/datalog_incremental_test.dir/datalog_incremental_test.cc.o"
  "CMakeFiles/datalog_incremental_test.dir/datalog_incremental_test.cc.o.d"
  "datalog_incremental_test"
  "datalog_incremental_test.pdb"
  "datalog_incremental_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_incremental_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
