# Empty compiler generated dependencies file for knowledge_graph_test.
# This may be replaced when dependencies are built.
