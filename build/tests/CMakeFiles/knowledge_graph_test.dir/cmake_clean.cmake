file(REMOVE_RECURSE
  "CMakeFiles/knowledge_graph_test.dir/knowledge_graph_test.cc.o"
  "CMakeFiles/knowledge_graph_test.dir/knowledge_graph_test.cc.o.d"
  "knowledge_graph_test"
  "knowledge_graph_test.pdb"
  "knowledge_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
