file(REMOVE_RECURSE
  "CMakeFiles/datalog_io_test.dir/datalog_io_test.cc.o"
  "CMakeFiles/datalog_io_test.dir/datalog_io_test.cc.o.d"
  "datalog_io_test"
  "datalog_io_test.pdb"
  "datalog_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
