# Empty dependencies file for link_functions_test.
# This may be replaced when dependencies are built.
