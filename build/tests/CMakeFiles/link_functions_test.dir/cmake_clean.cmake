file(REMOVE_RECURSE
  "CMakeFiles/link_functions_test.dir/link_functions_test.cc.o"
  "CMakeFiles/link_functions_test.dir/link_functions_test.cc.o.d"
  "link_functions_test"
  "link_functions_test.pdb"
  "link_functions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
