file(REMOVE_RECURSE
  "CMakeFiles/datalog_parser_test.dir/datalog_parser_test.cc.o"
  "CMakeFiles/datalog_parser_test.dir/datalog_parser_test.cc.o.d"
  "datalog_parser_test"
  "datalog_parser_test.pdb"
  "datalog_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
