file(REMOVE_RECURSE
  "CMakeFiles/datalog_warded_test.dir/datalog_warded_test.cc.o"
  "CMakeFiles/datalog_warded_test.dir/datalog_warded_test.cc.o.d"
  "datalog_warded_test"
  "datalog_warded_test.pdb"
  "datalog_warded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datalog_warded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
