file(REMOVE_RECURSE
  "CMakeFiles/company_test.dir/company_test.cc.o"
  "CMakeFiles/company_test.dir/company_test.cc.o.d"
  "company_test"
  "company_test.pdb"
  "company_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/company_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
