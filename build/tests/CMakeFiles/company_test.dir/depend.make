# Empty dependencies file for company_test.
# This may be replaced when dependencies are built.
