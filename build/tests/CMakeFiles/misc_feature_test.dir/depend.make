# Empty dependencies file for misc_feature_test.
# This may be replaced when dependencies are built.
