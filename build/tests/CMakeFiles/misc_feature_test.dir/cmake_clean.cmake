file(REMOVE_RECURSE
  "CMakeFiles/misc_feature_test.dir/misc_feature_test.cc.o"
  "CMakeFiles/misc_feature_test.dir/misc_feature_test.cc.o.d"
  "misc_feature_test"
  "misc_feature_test.pdb"
  "misc_feature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misc_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
