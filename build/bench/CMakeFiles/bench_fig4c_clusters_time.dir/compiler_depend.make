# Empty compiler generated dependencies file for bench_fig4c_clusters_time.
# This may be replaced when dependencies are built.
