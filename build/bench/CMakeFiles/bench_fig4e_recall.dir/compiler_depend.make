# Empty compiler generated dependencies file for bench_fig4e_recall.
# This may be replaced when dependencies are built.
