file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ownership.dir/bench_ablation_ownership.cc.o"
  "CMakeFiles/bench_ablation_ownership.dir/bench_ablation_ownership.cc.o.d"
  "bench_ablation_ownership"
  "bench_ablation_ownership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ownership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
