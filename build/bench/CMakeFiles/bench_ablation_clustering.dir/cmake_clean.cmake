file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_clustering.dir/bench_ablation_clustering.cc.o"
  "CMakeFiles/bench_ablation_clustering.dir/bench_ablation_clustering.cc.o.d"
  "bench_ablation_clustering"
  "bench_ablation_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
