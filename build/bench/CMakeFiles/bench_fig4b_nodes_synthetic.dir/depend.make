# Empty dependencies file for bench_fig4b_nodes_synthetic.
# This may be replaced when dependencies are built.
