# Empty dependencies file for bench_table1_graph_stats.
# This may be replaced when dependencies are built.
