# Empty compiler generated dependencies file for bench_fig4d_density.
# This may be replaced when dependencies are built.
