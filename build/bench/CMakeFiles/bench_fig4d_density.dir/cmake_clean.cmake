file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4d_density.dir/bench_fig4d_density.cc.o"
  "CMakeFiles/bench_fig4d_density.dir/bench_fig4d_density.cc.o.d"
  "bench_fig4d_density"
  "bench_fig4d_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4d_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
