file(REMOVE_RECURSE
  "CMakeFiles/bench_datalog_micro.dir/bench_datalog_micro.cc.o"
  "CMakeFiles/bench_datalog_micro.dir/bench_datalog_micro.cc.o.d"
  "bench_datalog_micro"
  "bench_datalog_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datalog_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
