# Empty dependencies file for bench_datalog_micro.
# This may be replaced when dependencies are built.
