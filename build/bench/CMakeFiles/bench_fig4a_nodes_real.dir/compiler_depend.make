# Empty compiler generated dependencies file for bench_fig4a_nodes_real.
# This may be replaced when dependencies are built.
