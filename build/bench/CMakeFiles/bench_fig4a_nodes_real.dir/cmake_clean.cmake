file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_nodes_real.dir/bench_fig4a_nodes_real.cc.o"
  "CMakeFiles/bench_fig4a_nodes_real.dir/bench_fig4a_nodes_real.cc.o.d"
  "bench_fig4a_nodes_real"
  "bench_fig4a_nodes_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_nodes_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
