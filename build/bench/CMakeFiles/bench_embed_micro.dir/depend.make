# Empty dependencies file for bench_embed_micro.
# This may be replaced when dependencies are built.
