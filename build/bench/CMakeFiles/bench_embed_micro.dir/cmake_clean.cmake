file(REMOVE_RECURSE
  "CMakeFiles/bench_embed_micro.dir/bench_embed_micro.cc.o"
  "CMakeFiles/bench_embed_micro.dir/bench_embed_micro.cc.o.d"
  "bench_embed_micro"
  "bench_embed_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embed_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
