# Empty dependencies file for vl_datalog.
# This may be replaced when dependencies are built.
