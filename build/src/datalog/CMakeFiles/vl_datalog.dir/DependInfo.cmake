
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datalog/ast.cc" "src/datalog/CMakeFiles/vl_datalog.dir/ast.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/ast.cc.o.d"
  "/root/repo/src/datalog/builtins.cc" "src/datalog/CMakeFiles/vl_datalog.dir/builtins.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/builtins.cc.o.d"
  "/root/repo/src/datalog/database.cc" "src/datalog/CMakeFiles/vl_datalog.dir/database.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/database.cc.o.d"
  "/root/repo/src/datalog/engine.cc" "src/datalog/CMakeFiles/vl_datalog.dir/engine.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/engine.cc.o.d"
  "/root/repo/src/datalog/lexer.cc" "src/datalog/CMakeFiles/vl_datalog.dir/lexer.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/lexer.cc.o.d"
  "/root/repo/src/datalog/parser.cc" "src/datalog/CMakeFiles/vl_datalog.dir/parser.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/parser.cc.o.d"
  "/root/repo/src/datalog/relation_io.cc" "src/datalog/CMakeFiles/vl_datalog.dir/relation_io.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/relation_io.cc.o.d"
  "/root/repo/src/datalog/stratify.cc" "src/datalog/CMakeFiles/vl_datalog.dir/stratify.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/stratify.cc.o.d"
  "/root/repo/src/datalog/value.cc" "src/datalog/CMakeFiles/vl_datalog.dir/value.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/value.cc.o.d"
  "/root/repo/src/datalog/warded.cc" "src/datalog/CMakeFiles/vl_datalog.dir/warded.cc.o" "gcc" "src/datalog/CMakeFiles/vl_datalog.dir/warded.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
