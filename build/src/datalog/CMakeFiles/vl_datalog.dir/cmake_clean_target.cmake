file(REMOVE_RECURSE
  "libvl_datalog.a"
)
