file(REMOVE_RECURSE
  "CMakeFiles/vl_datalog.dir/ast.cc.o"
  "CMakeFiles/vl_datalog.dir/ast.cc.o.d"
  "CMakeFiles/vl_datalog.dir/builtins.cc.o"
  "CMakeFiles/vl_datalog.dir/builtins.cc.o.d"
  "CMakeFiles/vl_datalog.dir/database.cc.o"
  "CMakeFiles/vl_datalog.dir/database.cc.o.d"
  "CMakeFiles/vl_datalog.dir/engine.cc.o"
  "CMakeFiles/vl_datalog.dir/engine.cc.o.d"
  "CMakeFiles/vl_datalog.dir/lexer.cc.o"
  "CMakeFiles/vl_datalog.dir/lexer.cc.o.d"
  "CMakeFiles/vl_datalog.dir/parser.cc.o"
  "CMakeFiles/vl_datalog.dir/parser.cc.o.d"
  "CMakeFiles/vl_datalog.dir/relation_io.cc.o"
  "CMakeFiles/vl_datalog.dir/relation_io.cc.o.d"
  "CMakeFiles/vl_datalog.dir/stratify.cc.o"
  "CMakeFiles/vl_datalog.dir/stratify.cc.o.d"
  "CMakeFiles/vl_datalog.dir/value.cc.o"
  "CMakeFiles/vl_datalog.dir/value.cc.o.d"
  "CMakeFiles/vl_datalog.dir/warded.cc.o"
  "CMakeFiles/vl_datalog.dir/warded.cc.o.d"
  "libvl_datalog.a"
  "libvl_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
