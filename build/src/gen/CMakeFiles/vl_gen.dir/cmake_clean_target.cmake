file(REMOVE_RECURSE
  "libvl_gen.a"
)
