
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/barabasi_albert.cc" "src/gen/CMakeFiles/vl_gen.dir/barabasi_albert.cc.o" "gcc" "src/gen/CMakeFiles/vl_gen.dir/barabasi_albert.cc.o.d"
  "/root/repo/src/gen/evolution.cc" "src/gen/CMakeFiles/vl_gen.dir/evolution.cc.o" "gcc" "src/gen/CMakeFiles/vl_gen.dir/evolution.cc.o.d"
  "/root/repo/src/gen/name_pools.cc" "src/gen/CMakeFiles/vl_gen.dir/name_pools.cc.o" "gcc" "src/gen/CMakeFiles/vl_gen.dir/name_pools.cc.o.d"
  "/root/repo/src/gen/register_simulator.cc" "src/gen/CMakeFiles/vl_gen.dir/register_simulator.cc.o" "gcc" "src/gen/CMakeFiles/vl_gen.dir/register_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
