file(REMOVE_RECURSE
  "CMakeFiles/vl_gen.dir/barabasi_albert.cc.o"
  "CMakeFiles/vl_gen.dir/barabasi_albert.cc.o.d"
  "CMakeFiles/vl_gen.dir/evolution.cc.o"
  "CMakeFiles/vl_gen.dir/evolution.cc.o.d"
  "CMakeFiles/vl_gen.dir/name_pools.cc.o"
  "CMakeFiles/vl_gen.dir/name_pools.cc.o.d"
  "CMakeFiles/vl_gen.dir/register_simulator.cc.o"
  "CMakeFiles/vl_gen.dir/register_simulator.cc.o.d"
  "libvl_gen.a"
  "libvl_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
