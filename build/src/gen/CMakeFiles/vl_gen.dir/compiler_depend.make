# Empty compiler generated dependencies file for vl_gen.
# This may be replaced when dependencies are built.
