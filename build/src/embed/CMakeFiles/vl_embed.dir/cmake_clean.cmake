file(REMOVE_RECURSE
  "CMakeFiles/vl_embed.dir/alias_sampler.cc.o"
  "CMakeFiles/vl_embed.dir/alias_sampler.cc.o.d"
  "CMakeFiles/vl_embed.dir/embed_clusterer.cc.o"
  "CMakeFiles/vl_embed.dir/embed_clusterer.cc.o.d"
  "CMakeFiles/vl_embed.dir/kmeans.cc.o"
  "CMakeFiles/vl_embed.dir/kmeans.cc.o.d"
  "CMakeFiles/vl_embed.dir/node2vec.cc.o"
  "CMakeFiles/vl_embed.dir/node2vec.cc.o.d"
  "CMakeFiles/vl_embed.dir/skipgram.cc.o"
  "CMakeFiles/vl_embed.dir/skipgram.cc.o.d"
  "libvl_embed.a"
  "libvl_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
