
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embed/alias_sampler.cc" "src/embed/CMakeFiles/vl_embed.dir/alias_sampler.cc.o" "gcc" "src/embed/CMakeFiles/vl_embed.dir/alias_sampler.cc.o.d"
  "/root/repo/src/embed/embed_clusterer.cc" "src/embed/CMakeFiles/vl_embed.dir/embed_clusterer.cc.o" "gcc" "src/embed/CMakeFiles/vl_embed.dir/embed_clusterer.cc.o.d"
  "/root/repo/src/embed/kmeans.cc" "src/embed/CMakeFiles/vl_embed.dir/kmeans.cc.o" "gcc" "src/embed/CMakeFiles/vl_embed.dir/kmeans.cc.o.d"
  "/root/repo/src/embed/node2vec.cc" "src/embed/CMakeFiles/vl_embed.dir/node2vec.cc.o" "gcc" "src/embed/CMakeFiles/vl_embed.dir/node2vec.cc.o.d"
  "/root/repo/src/embed/skipgram.cc" "src/embed/CMakeFiles/vl_embed.dir/skipgram.cc.o" "gcc" "src/embed/CMakeFiles/vl_embed.dir/skipgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
