file(REMOVE_RECURSE
  "libvl_embed.a"
)
