# Empty compiler generated dependencies file for vl_embed.
# This may be replaced when dependencies are built.
