# Empty dependencies file for vl_core.
# This may be replaced when dependencies are built.
