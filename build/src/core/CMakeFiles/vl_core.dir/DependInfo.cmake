
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidates.cc" "src/core/CMakeFiles/vl_core.dir/candidates.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/candidates.cc.o.d"
  "/root/repo/src/core/evaluation.cc" "src/core/CMakeFiles/vl_core.dir/evaluation.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/evaluation.cc.o.d"
  "/root/repo/src/core/knowledge_graph.cc" "src/core/CMakeFiles/vl_core.dir/knowledge_graph.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/knowledge_graph.cc.o.d"
  "/root/repo/src/core/link_class.cc" "src/core/CMakeFiles/vl_core.dir/link_class.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/link_class.cc.o.d"
  "/root/repo/src/core/link_functions.cc" "src/core/CMakeFiles/vl_core.dir/link_functions.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/link_functions.cc.o.d"
  "/root/repo/src/core/mapping.cc" "src/core/CMakeFiles/vl_core.dir/mapping.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/mapping.cc.o.d"
  "/root/repo/src/core/naive_baseline.cc" "src/core/CMakeFiles/vl_core.dir/naive_baseline.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/naive_baseline.cc.o.d"
  "/root/repo/src/core/vada_link.cc" "src/core/CMakeFiles/vl_core.dir/vada_link.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/vada_link.cc.o.d"
  "/root/repo/src/core/vadalog_programs.cc" "src/core/CMakeFiles/vl_core.dir/vadalog_programs.cc.o" "gcc" "src/core/CMakeFiles/vl_core.dir/vadalog_programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/vl_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/embed/CMakeFiles/vl_embed.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/vl_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/company/CMakeFiles/vl_company.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
