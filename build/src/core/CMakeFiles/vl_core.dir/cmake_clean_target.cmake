file(REMOVE_RECURSE
  "libvl_core.a"
)
