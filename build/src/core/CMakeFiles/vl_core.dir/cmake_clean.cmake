file(REMOVE_RECURSE
  "CMakeFiles/vl_core.dir/candidates.cc.o"
  "CMakeFiles/vl_core.dir/candidates.cc.o.d"
  "CMakeFiles/vl_core.dir/evaluation.cc.o"
  "CMakeFiles/vl_core.dir/evaluation.cc.o.d"
  "CMakeFiles/vl_core.dir/knowledge_graph.cc.o"
  "CMakeFiles/vl_core.dir/knowledge_graph.cc.o.d"
  "CMakeFiles/vl_core.dir/link_class.cc.o"
  "CMakeFiles/vl_core.dir/link_class.cc.o.d"
  "CMakeFiles/vl_core.dir/link_functions.cc.o"
  "CMakeFiles/vl_core.dir/link_functions.cc.o.d"
  "CMakeFiles/vl_core.dir/mapping.cc.o"
  "CMakeFiles/vl_core.dir/mapping.cc.o.d"
  "CMakeFiles/vl_core.dir/naive_baseline.cc.o"
  "CMakeFiles/vl_core.dir/naive_baseline.cc.o.d"
  "CMakeFiles/vl_core.dir/vada_link.cc.o"
  "CMakeFiles/vl_core.dir/vada_link.cc.o.d"
  "CMakeFiles/vl_core.dir/vadalog_programs.cc.o"
  "CMakeFiles/vl_core.dir/vadalog_programs.cc.o.d"
  "libvl_core.a"
  "libvl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
