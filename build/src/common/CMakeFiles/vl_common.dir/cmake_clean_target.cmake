file(REMOVE_RECURSE
  "libvl_common.a"
)
