# Empty dependencies file for vl_common.
# This may be replaced when dependencies are built.
