file(REMOVE_RECURSE
  "CMakeFiles/vl_common.dir/csv.cc.o"
  "CMakeFiles/vl_common.dir/csv.cc.o.d"
  "CMakeFiles/vl_common.dir/status.cc.o"
  "CMakeFiles/vl_common.dir/status.cc.o.d"
  "CMakeFiles/vl_common.dir/string_util.cc.o"
  "CMakeFiles/vl_common.dir/string_util.cc.o.d"
  "libvl_common.a"
  "libvl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
