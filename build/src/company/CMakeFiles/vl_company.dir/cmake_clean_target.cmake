file(REMOVE_RECURSE
  "libvl_company.a"
)
