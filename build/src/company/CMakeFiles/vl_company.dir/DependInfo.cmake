
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/company/close_link.cc" "src/company/CMakeFiles/vl_company.dir/close_link.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/close_link.cc.o.d"
  "/root/repo/src/company/company_graph.cc" "src/company/CMakeFiles/vl_company.dir/company_graph.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/company_graph.cc.o.d"
  "/root/repo/src/company/control.cc" "src/company/CMakeFiles/vl_company.dir/control.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/control.cc.o.d"
  "/root/repo/src/company/eligibility.cc" "src/company/CMakeFiles/vl_company.dir/eligibility.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/eligibility.cc.o.d"
  "/root/repo/src/company/family.cc" "src/company/CMakeFiles/vl_company.dir/family.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/family.cc.o.d"
  "/root/repo/src/company/groups.cc" "src/company/CMakeFiles/vl_company.dir/groups.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/groups.cc.o.d"
  "/root/repo/src/company/ownership.cc" "src/company/CMakeFiles/vl_company.dir/ownership.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/ownership.cc.o.d"
  "/root/repo/src/company/temporal.cc" "src/company/CMakeFiles/vl_company.dir/temporal.cc.o" "gcc" "src/company/CMakeFiles/vl_company.dir/temporal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vl_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/vl_linkage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
