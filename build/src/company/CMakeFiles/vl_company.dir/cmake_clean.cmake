file(REMOVE_RECURSE
  "CMakeFiles/vl_company.dir/close_link.cc.o"
  "CMakeFiles/vl_company.dir/close_link.cc.o.d"
  "CMakeFiles/vl_company.dir/company_graph.cc.o"
  "CMakeFiles/vl_company.dir/company_graph.cc.o.d"
  "CMakeFiles/vl_company.dir/control.cc.o"
  "CMakeFiles/vl_company.dir/control.cc.o.d"
  "CMakeFiles/vl_company.dir/eligibility.cc.o"
  "CMakeFiles/vl_company.dir/eligibility.cc.o.d"
  "CMakeFiles/vl_company.dir/family.cc.o"
  "CMakeFiles/vl_company.dir/family.cc.o.d"
  "CMakeFiles/vl_company.dir/groups.cc.o"
  "CMakeFiles/vl_company.dir/groups.cc.o.d"
  "CMakeFiles/vl_company.dir/ownership.cc.o"
  "CMakeFiles/vl_company.dir/ownership.cc.o.d"
  "CMakeFiles/vl_company.dir/temporal.cc.o"
  "CMakeFiles/vl_company.dir/temporal.cc.o.d"
  "libvl_company.a"
  "libvl_company.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_company.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
