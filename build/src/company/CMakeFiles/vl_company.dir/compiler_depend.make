# Empty compiler generated dependencies file for vl_company.
# This may be replaced when dependencies are built.
