file(REMOVE_RECURSE
  "CMakeFiles/vl_graph.dir/dot_export.cc.o"
  "CMakeFiles/vl_graph.dir/dot_export.cc.o.d"
  "CMakeFiles/vl_graph.dir/graph_algorithms.cc.o"
  "CMakeFiles/vl_graph.dir/graph_algorithms.cc.o.d"
  "CMakeFiles/vl_graph.dir/graph_io.cc.o"
  "CMakeFiles/vl_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/vl_graph.dir/pagerank.cc.o"
  "CMakeFiles/vl_graph.dir/pagerank.cc.o.d"
  "CMakeFiles/vl_graph.dir/property_graph.cc.o"
  "CMakeFiles/vl_graph.dir/property_graph.cc.o.d"
  "CMakeFiles/vl_graph.dir/property_value.cc.o"
  "CMakeFiles/vl_graph.dir/property_value.cc.o.d"
  "CMakeFiles/vl_graph.dir/subgraph.cc.o"
  "CMakeFiles/vl_graph.dir/subgraph.cc.o.d"
  "libvl_graph.a"
  "libvl_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
