# Empty compiler generated dependencies file for vl_graph.
# This may be replaced when dependencies are built.
