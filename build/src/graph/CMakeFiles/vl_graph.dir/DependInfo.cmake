
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dot_export.cc" "src/graph/CMakeFiles/vl_graph.dir/dot_export.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/dot_export.cc.o.d"
  "/root/repo/src/graph/graph_algorithms.cc" "src/graph/CMakeFiles/vl_graph.dir/graph_algorithms.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/graph_algorithms.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/vl_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/pagerank.cc" "src/graph/CMakeFiles/vl_graph.dir/pagerank.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/pagerank.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/graph/CMakeFiles/vl_graph.dir/property_graph.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/property_graph.cc.o.d"
  "/root/repo/src/graph/property_value.cc" "src/graph/CMakeFiles/vl_graph.dir/property_value.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/property_value.cc.o.d"
  "/root/repo/src/graph/subgraph.cc" "src/graph/CMakeFiles/vl_graph.dir/subgraph.cc.o" "gcc" "src/graph/CMakeFiles/vl_graph.dir/subgraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
