file(REMOVE_RECURSE
  "libvl_graph.a"
)
