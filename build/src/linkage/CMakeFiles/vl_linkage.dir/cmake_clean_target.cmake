file(REMOVE_RECURSE
  "libvl_linkage.a"
)
