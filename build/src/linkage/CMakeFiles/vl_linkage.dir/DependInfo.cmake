
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linkage/bayes.cc" "src/linkage/CMakeFiles/vl_linkage.dir/bayes.cc.o" "gcc" "src/linkage/CMakeFiles/vl_linkage.dir/bayes.cc.o.d"
  "/root/repo/src/linkage/blocking.cc" "src/linkage/CMakeFiles/vl_linkage.dir/blocking.cc.o" "gcc" "src/linkage/CMakeFiles/vl_linkage.dir/blocking.cc.o.d"
  "/root/repo/src/linkage/feature.cc" "src/linkage/CMakeFiles/vl_linkage.dir/feature.cc.o" "gcc" "src/linkage/CMakeFiles/vl_linkage.dir/feature.cc.o.d"
  "/root/repo/src/linkage/sorted_neighborhood.cc" "src/linkage/CMakeFiles/vl_linkage.dir/sorted_neighborhood.cc.o" "gcc" "src/linkage/CMakeFiles/vl_linkage.dir/sorted_neighborhood.cc.o.d"
  "/root/repo/src/linkage/string_metrics.cc" "src/linkage/CMakeFiles/vl_linkage.dir/string_metrics.cc.o" "gcc" "src/linkage/CMakeFiles/vl_linkage.dir/string_metrics.cc.o.d"
  "/root/repo/src/linkage/token_blocking.cc" "src/linkage/CMakeFiles/vl_linkage.dir/token_blocking.cc.o" "gcc" "src/linkage/CMakeFiles/vl_linkage.dir/token_blocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vl_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
