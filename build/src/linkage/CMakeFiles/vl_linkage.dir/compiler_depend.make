# Empty compiler generated dependencies file for vl_linkage.
# This may be replaced when dependencies are built.
