file(REMOVE_RECURSE
  "CMakeFiles/vl_linkage.dir/bayes.cc.o"
  "CMakeFiles/vl_linkage.dir/bayes.cc.o.d"
  "CMakeFiles/vl_linkage.dir/blocking.cc.o"
  "CMakeFiles/vl_linkage.dir/blocking.cc.o.d"
  "CMakeFiles/vl_linkage.dir/feature.cc.o"
  "CMakeFiles/vl_linkage.dir/feature.cc.o.d"
  "CMakeFiles/vl_linkage.dir/sorted_neighborhood.cc.o"
  "CMakeFiles/vl_linkage.dir/sorted_neighborhood.cc.o.d"
  "CMakeFiles/vl_linkage.dir/string_metrics.cc.o"
  "CMakeFiles/vl_linkage.dir/string_metrics.cc.o.d"
  "CMakeFiles/vl_linkage.dir/token_blocking.cc.o"
  "CMakeFiles/vl_linkage.dir/token_blocking.cc.o.d"
  "libvl_linkage.a"
  "libvl_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vl_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
