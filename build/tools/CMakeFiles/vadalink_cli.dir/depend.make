# Empty dependencies file for vadalink_cli.
# This may be replaced when dependencies are built.
