file(REMOVE_RECURSE
  "CMakeFiles/vadalink_cli.dir/vadalink_cli.cpp.o"
  "CMakeFiles/vadalink_cli.dir/vadalink_cli.cpp.o.d"
  "vadalink"
  "vadalink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vadalink_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
