// A3 — microbenchmarks of the Datalog± engine: chase throughput on
// classic recursive workloads, monotonic aggregation, parser speed.
//
// `--engine-json FILE` switches to a fixed workload suite run under both
// join orders and emits the BENCH_engine.json document (throughput, join
// probe counts, per-rule plans); see bench/engine_bench_json.h.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bench/engine_bench_json.h"
#include "common/timer.h"
#include "datalog/engine.h"
#include "datalog/parser.h"

using namespace vadalink;
using namespace vadalink::datalog;

namespace {

// Transitive closure over a chain of n edges: n*(n+1)/2 derived facts.
void BM_TransitiveClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::string src;
  for (int64_t i = 0; i < n; ++i) {
    src += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  src += "e(X,Y) -> tc(X,Y).\ntc(X,Y), e(Y,Z) -> tc(X,Z).\n";
  // Parse once — the timed region is the chase, not the parser (BM_Parse
  // measures that); each iteration chases into a fresh database.
  Catalog catalog;
  auto program = ParseProgram(src, &catalog);
  if (!program.ok()) state.SkipWithError("parse failed");
  for (auto _ : state) {
    Database db(&catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
  state.counters["facts"] = static_cast<double>(n) * (n + 1) / 2;
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(50)->Arg(100)->Arg(200);

// Binary-tree same-generation: quadratic-ish non-linear recursion.
void BM_SameGeneration(benchmark::State& state) {
  const int64_t levels = state.range(0);
  std::string src;
  int64_t next = 1;
  std::vector<int64_t> frontier{0};
  for (int64_t l = 0; l < levels; ++l) {
    std::vector<int64_t> children;
    for (int64_t p : frontier) {
      for (int c = 0; c < 2; ++c) {
        src += "up(" + std::to_string(next) + "," + std::to_string(p) +
               ").\n";
        children.push_back(next++);
      }
    }
    frontier = std::move(children);
  }
  src += "up(X,P), up(Y,P), X != Y -> sg(X,Y).\n";
  src += "up(X,P), sg(P,Q), up(Y,Q), X != Y -> sg(X,Y).\n";
  Catalog catalog;
  auto program = ParseProgram(src, &catalog);
  if (!program.ok()) state.SkipWithError("parse failed");
  for (auto _ : state) {
    Database db(&catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
}
BENCHMARK(BM_SameGeneration)->Arg(4)->Arg(6)->Arg(8);

// Monotonic aggregation: grouped msum with threshold firing.
void BM_MonotonicSum(benchmark::State& state) {
  const int64_t groups = state.range(0);
  std::string src;
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t c = 0; c < 20; ++c) {
      src += "contrib(" + std::to_string(g) + "," + std::to_string(c) +
             ",0.04).\n";
    }
  }
  src += "contrib(G,C,W), S = msum(W, <C>), S > 0.5 -> hot(G).\n";
  Catalog catalog;
  auto program = ParseProgram(src, &catalog);
  if (!program.ok()) state.SkipWithError("parse failed");
  for (auto _ : state) {
    Database db(&catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.Scan("hot").size());
  }
  state.counters["contribs"] = static_cast<double>(groups * 20);
}
BENCHMARK(BM_MonotonicSum)->Arg(10)->Arg(100)->Arg(1000);

// Existential heads: null invention + Skolem-chase memoisation.
void BM_ExistentialChase(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::string src;
  for (int64_t i = 0; i < n; ++i) {
    src += "p(" + std::to_string(i) + ").\n";
  }
  src += "p(X) -> q(X, N).\nq(X, N) -> r(N).\n";
  Catalog catalog;
  auto program = ParseProgram(src, &catalog);
  if (!program.ok()) state.SkipWithError("parse failed");
  for (auto _ : state) {
    Database db(&catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
}
BENCHMARK(BM_ExistentialChase)->Arg(100)->Arg(1000)->Arg(10000);

// Parser throughput on a generated program.
void BM_Parse(benchmark::State& state) {
  std::string src;
  for (int i = 0; i < 200; ++i) {
    src += "own(\"a" + std::to_string(i) + "\", \"b\", 0." +
           std::to_string(10 + i % 80) + ").\n";
  }
  src += "own(X,Y,W), W >= 0.5, S = msum(W, <X>) -> big(Y, S).\n";
  for (auto _ : state) {
    Catalog catalog;
    auto program = ParseProgram(src, &catalog);
    if (!program.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(program->facts.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_Parse);

// ---------------------------------------------------------------------------
// --engine-json: fixed suite for the schema-checked BENCH_engine.json
// ---------------------------------------------------------------------------

std::string TcChainSource(int64_t n) {
  std::string src;
  for (int64_t i = 0; i < n; ++i) {
    src += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  src += "e(X,Y) -> tc(X,Y).\ntc(X,Y), e(Y,Z) -> tc(X,Z).\n";
  return src;
}

std::string SameGenSource(int64_t levels) {
  std::string src;
  int64_t next = 1;
  std::vector<int64_t> frontier{0};
  for (int64_t l = 0; l < levels; ++l) {
    std::vector<int64_t> children;
    for (int64_t p : frontier) {
      for (int c = 0; c < 2; ++c) {
        src += "up(" + std::to_string(next) + "," + std::to_string(p) +
               ").\n";
        children.push_back(next++);
      }
    }
    frontier = std::move(children);
  }
  src += "up(X,P), up(Y,P), X != Y -> sg(X,Y).\n";
  src += "up(X,P), sg(P,Q), up(Y,Q), X != Y -> sg(X,Y).\n";
  return src;
}

std::string MonotonicSumSource(int64_t groups) {
  std::string src;
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t c = 0; c < 20; ++c) {
      src += "contrib(" + std::to_string(g) + "," + std::to_string(c) +
             ",0.04).\n";
    }
  }
  src += "contrib(G,C,W), S = msum(W, <C>), S > 0.5 -> hot(G).\n";
  return src;
}

std::string ExistentialSource(int64_t n) {
  std::string src;
  for (int64_t i = 0; i < n; ++i) {
    src += "p(" + std::to_string(i) + ").\n";
  }
  src += "p(X) -> q(X, N).\nq(X, N) -> r(N).\n";
  return src;
}

// One chase of a pre-parsed program under the given join order into a
// fresh database (parsing stays outside the timed region); fills the run
// report and (optionally) plan summaries + the sorted fact-set
// fingerprint.
int RunEngineWorkload(Catalog* catalog, const Program& program,
                      JoinOrder order, bench::EngineRunReport* report,
                      uint64_t* facts, std::vector<std::string>* plans,
                      std::vector<std::string>* fingerprint) {
  Database db(catalog);
  EngineOptions opts;
  opts.join_order = order;
  Engine engine(&db, opts);
  WallTimer timer;
  if (Status st = engine.Run(program); !st.ok()) {
    std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
    return 1;
  }
  report->seconds = timer.ElapsedSeconds();
  const EngineStats& stats = engine.stats();
  *facts = stats.facts_derived;
  report->facts_per_sec =
      report->seconds > 0
          ? static_cast<double>(stats.facts_derived) / report->seconds
          : 0.0;
  report->join_probes = stats.join_probes;
  report->plans_computed = stats.plans_computed;
  report->plan_cache_hits = stats.plan_cache_hits;
  if (plans != nullptr) *plans = engine.PlanSummaries();
  if (fingerprint != nullptr) *fingerprint = bench::DatabaseFingerprint(db);
  return 0;
}

int EmitEngineJson(const std::string& path) {
  struct Workload {
    const char* name;
    std::string src;
  };
  const Workload workloads[] = {
      {"tc_chain_200", TcChainSource(200)},
      {"same_generation_8", SameGenSource(8)},
      {"monotonic_sum_100", MonotonicSumSource(100)},
      {"existential_chase_1000", ExistentialSource(1000)},
  };
  std::vector<bench::EngineWorkloadReport> reports;
  for (const Workload& w : workloads) {
    bench::EngineWorkloadReport r;
    r.name = w.name;
    Catalog catalog;
    auto program = ParseProgram(w.src, &catalog);
    if (!program.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   program.status().ToString().c_str());
      return 1;
    }
    uint64_t planned_facts = 0, worst_facts = 0;
    std::vector<std::string> planned_fp, worst_fp;
    if (RunEngineWorkload(&catalog, *program, JoinOrder::kPlanned,
                          &r.planned, &planned_facts, &r.plans,
                          &planned_fp) != 0 ||
        RunEngineWorkload(&catalog, *program, JoinOrder::kWorstCase,
                          &r.worst_case, &worst_facts, nullptr,
                          &worst_fp) != 0) {
      return 1;
    }
    r.facts_derived = planned_facts;
    r.agree = planned_facts == worst_facts && planned_fp == worst_fp;
    std::printf(
        "%-24s facts %8llu | planned %8.0f f/s %8llu probes | "
        "worst %8.0f f/s %8llu probes | agree %s\n",
        w.name, static_cast<unsigned long long>(planned_facts),
        r.planned.facts_per_sec,
        static_cast<unsigned long long>(r.planned.join_probes),
        r.worst_case.facts_per_sec,
        static_cast<unsigned long long>(r.worst_case.join_probes),
        r.agree ? "yes" : "NO!");
    reports.push_back(std::move(r));
  }
  if (!bench::WriteEngineBenchJson(path, "datalog_micro", reports)) return 1;
  for (const auto& r : reports) {
    if (!r.agree) {
      std::fprintf(stderr, "FAIL: %s fact sets differ across join orders\n",
                   r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-json") == 0) {
      return EmitEngineJson(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
