// A3 — microbenchmarks of the Datalog± engine: chase throughput on
// classic recursive workloads, monotonic aggregation, parser speed.
#include <benchmark/benchmark.h>

#include <string>

#include "datalog/engine.h"
#include "datalog/parser.h"

using namespace vadalink;
using namespace vadalink::datalog;

namespace {

// Transitive closure over a chain of n edges: n*(n+1)/2 derived facts.
void BM_TransitiveClosureChain(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::string src;
  for (int64_t i = 0; i < n; ++i) {
    src += "e(" + std::to_string(i) + "," + std::to_string(i + 1) + ").\n";
  }
  src += "e(X,Y) -> tc(X,Y).\ntc(X,Y), e(Y,Z) -> tc(X,Z).\n";
  for (auto _ : state) {
    Catalog catalog;
    Database db(&catalog);
    auto program = ParseProgram(src, &catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
  state.counters["facts"] = static_cast<double>(n) * (n + 1) / 2;
}
BENCHMARK(BM_TransitiveClosureChain)->Arg(50)->Arg(100)->Arg(200);

// Binary-tree same-generation: quadratic-ish non-linear recursion.
void BM_SameGeneration(benchmark::State& state) {
  const int64_t levels = state.range(0);
  std::string src;
  int64_t next = 1;
  std::vector<int64_t> frontier{0};
  for (int64_t l = 0; l < levels; ++l) {
    std::vector<int64_t> children;
    for (int64_t p : frontier) {
      for (int c = 0; c < 2; ++c) {
        src += "up(" + std::to_string(next) + "," + std::to_string(p) +
               ").\n";
        children.push_back(next++);
      }
    }
    frontier = std::move(children);
  }
  src += "up(X,P), up(Y,P), X != Y -> sg(X,Y).\n";
  src += "up(X,P), sg(P,Q), up(Y,Q), X != Y -> sg(X,Y).\n";
  for (auto _ : state) {
    Catalog catalog;
    Database db(&catalog);
    auto program = ParseProgram(src, &catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
}
BENCHMARK(BM_SameGeneration)->Arg(4)->Arg(6)->Arg(8);

// Monotonic aggregation: grouped msum with threshold firing.
void BM_MonotonicSum(benchmark::State& state) {
  const int64_t groups = state.range(0);
  std::string src;
  for (int64_t g = 0; g < groups; ++g) {
    for (int64_t c = 0; c < 20; ++c) {
      src += "contrib(" + std::to_string(g) + "," + std::to_string(c) +
             ",0.04).\n";
    }
  }
  src += "contrib(G,C,W), S = msum(W, <C>), S > 0.5 -> hot(G).\n";
  for (auto _ : state) {
    Catalog catalog;
    Database db(&catalog);
    auto program = ParseProgram(src, &catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TuplesOf("hot").size());
  }
  state.counters["contribs"] = static_cast<double>(groups * 20);
}
BENCHMARK(BM_MonotonicSum)->Arg(10)->Arg(100)->Arg(1000);

// Existential heads: null invention + Skolem-chase memoisation.
void BM_ExistentialChase(benchmark::State& state) {
  const int64_t n = state.range(0);
  std::string src;
  for (int64_t i = 0; i < n; ++i) {
    src += "p(" + std::to_string(i) + ").\n";
  }
  src += "p(X) -> q(X, N).\nq(X, N) -> r(N).\n";
  for (auto _ : state) {
    Catalog catalog;
    Database db(&catalog);
    auto program = ParseProgram(src, &catalog);
    Engine engine(&db);
    Status st = engine.Run(*program);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(db.TotalFacts());
  }
}
BENCHMARK(BM_ExistentialChase)->Arg(100)->Arg(1000)->Arg(10000);

// Parser throughput on a generated program.
void BM_Parse(benchmark::State& state) {
  std::string src;
  for (int i = 0; i < 200; ++i) {
    src += "own(\"a" + std::to_string(i) + "\", \"b\", 0." +
           std::to_string(10 + i % 80) + ").\n";
  }
  src += "own(X,Y,W), W >= 0.5, S = msum(W, <X>) -> big(Y, S).\n";
  for (auto _ : state) {
    Catalog catalog;
    auto program = ParseProgram(src, &catalog);
    if (!program.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(program->facts.size());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(src.size()));
}
BENCHMARK(BM_Parse);

}  // namespace

BENCHMARK_MAIN();
