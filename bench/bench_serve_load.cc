// Load benchmark for `vadalink serve`: an in-process server on an
// ephemeral port under a closed-loop multi-client workload of keyed
// reasoning queries (control / ubo / closelinks), health probes and a
// trickle of ingest writes. Shed responses (ResourceExhausted) are
// retried after the server's retry_after_ms hint — the retry count and
// shed rate are part of the result, not noise.
//
// Emits a JSON document to --out (default BENCH_serve.json) validated in
// CI against tools/serve_bench_schema.json:
//
//   { "schema_version": 1,
//     "config": {"clients": 8, "requests_per_client": 500, ...},
//     "graph": {"nodes": ..., "edges": ...},
//     "totals": {"requests": ..., "ok": ..., "shed": ..., "stale": ...,
//                "errors": ..., "retries": ...},
//     "qps": ..., "shed_rate": ...,
//     "latency_ms": {"p50": ..., "p90": ..., "p99": ..., "max": ...},
//     "duration_seconds": ... }
//
// Flags: --clients N  --requests N  --max-inflight N  --queue-depth N
//        --deadline-ms N  --persons N  --companies N  --out FILE
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/timer.h"
#include "gen/register_simulator.h"
#include "serve/client.h"
#include "serve/server.h"

using namespace vadalink;

namespace {

struct BenchConfig {
  int clients = 8;
  int requests_per_client = 500;
  int max_inflight = 4;
  int queue_depth = 64;
  int deadline_ms = 2000;
  size_t persons = 400;
  size_t companies = 300;
  std::string out = "BENCH_serve.json";
};

struct ClientStats {
  std::vector<double> latencies_ms;  // completed round trips (ok or error)
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t stale = 0;
  uint64_t errors = 0;   // structured non-shed errors
  uint64_t retries = 0;  // resends after a shed
  uint64_t transport_failures = 0;
};

// One closed-loop client: issues its request mix synchronously, retrying
// shed requests after the hinted backoff (bounded attempts so an
// overloaded server cannot wedge the bench).
ClientStats RunClient(int idx, int port, const BenchConfig& cfg,
                      size_t companies, size_t nodes) {
  ClientStats stats;
  auto conn = serve::Client::Connect("127.0.0.1", port,
                                     /*read_timeout_ms=*/30000);
  if (!conn.ok()) {
    stats.transport_failures = cfg.requests_per_client;
    return stats;
  }
  serve::Client client = std::move(conn).value();
  Rng rng(0xbeefULL + idx);
  stats.latencies_ms.reserve(cfg.requests_per_client);

  for (int i = 0; i < cfg.requests_per_client; ++i) {
    // 90% keyed reads over a small hot set (cache-friendly, like a
    // screening workload), 8% health, 2% ingest writes.
    uint64_t dice = rng.UniformU64(100);
    std::string op;
    serve::Json params = serve::Json::MakeObject();
    if (dice < 30) {
      op = "control";
      params.Set("source", serve::Json::Int(
                               static_cast<int64_t>(rng.UniformU64(nodes))));
    } else if (dice < 60) {
      op = "ubo";
      params.Set("target", serve::Json::Int(static_cast<int64_t>(
                               rng.UniformU64(companies))));
    } else if (dice < 90) {
      op = "closelinks";
      params.Set("company", serve::Json::Int(static_cast<int64_t>(
                                rng.UniformU64(companies))));
    } else if (dice < 98) {
      op = "health";
    } else {
      op = "ingest";
      serve::Json node = serve::Json::MakeObject();
      node.Set("label", serve::Json::Str("Company"));
      serve::Json nodes_arr = serve::Json::MakeArray();
      nodes_arr.Append(node);
      params.Set("nodes", nodes_arr);
    }

    for (int attempt = 0; attempt < 5; ++attempt) {
      WallTimer timer;
      auto resp = client.Call(op, params, cfg.deadline_ms);
      double ms = timer.ElapsedMillis();
      if (!resp.ok()) {
        ++stats.transport_failures;
        auto re = serve::Client::Connect("127.0.0.1", port, 30000);
        if (!re.ok()) return stats;
        client = std::move(re).value();
        break;
      }
      stats.latencies_ms.push_back(ms);
      const serve::Json* ok = resp->Find("ok");
      if (ok != nullptr && ok->AsBool()) {
        ++stats.ok;
        const serve::Json* stale = resp->Find("stale");
        if (stale != nullptr && stale->AsBool()) ++stats.stale;
        break;
      }
      const serve::Json* err = resp->Find("error");
      const serve::Json* retry =
          err != nullptr ? err->Find("retry_after_ms") : nullptr;
      if (retry != nullptr) {
        ++stats.shed;
        ++stats.retries;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(std::max<int64_t>(1, retry->AsInt())));
        continue;  // resend the same request
      }
      ++stats.errors;
      break;
    }
  }
  return stats;
}

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

int64_t FlagInt(int argc, char** argv, const char* name, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

std::string FlagStr(int argc, char** argv, const char* name,
                    std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  BenchConfig cfg;
  cfg.clients = static_cast<int>(FlagInt(argc, argv, "--clients", 8));
  cfg.requests_per_client =
      static_cast<int>(FlagInt(argc, argv, "--requests", 500));
  cfg.max_inflight = static_cast<int>(FlagInt(argc, argv, "--max-inflight", 4));
  cfg.queue_depth = static_cast<int>(FlagInt(argc, argv, "--queue-depth", 64));
  cfg.deadline_ms = static_cast<int>(FlagInt(argc, argv, "--deadline-ms", 2000));
  cfg.persons = static_cast<size_t>(FlagInt(argc, argv, "--persons", 400));
  cfg.companies =
      static_cast<size_t>(FlagInt(argc, argv, "--companies", 300));
  cfg.out = FlagStr(argc, argv, "--out", "BENCH_serve.json");

  gen::RegisterConfig reg_cfg;
  reg_cfg.persons = cfg.persons;
  reg_cfg.companies = cfg.companies;
  reg_cfg.seed = 42;
  gen::RegisterData data = gen::GenerateRegister(reg_cfg);
  size_t node_count = data.graph.node_count();
  size_t edge_count = data.graph.edge_count();
  size_t company_count = data.companies.size();

  MetricsRegistry metrics;
  serve::ServiceOptions service_opts;
  serve::ServerOptions server_opts;
  server_opts.port = 0;
  server_opts.max_inflight = static_cast<size_t>(cfg.max_inflight);
  server_opts.queue_depth = static_cast<size_t>(cfg.queue_depth);
  server_opts.request_deadline_ms = cfg.deadline_ms;
  serve::Server server(service_opts, server_opts, &metrics);
  if (Status st = server.Init(std::move(data.graph), ""); !st.ok()) {
    std::fprintf(stderr, "init failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = server.Start(); !st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("serve load: %d clients x %d requests against %zu nodes / "
              "%zu edges (inflight %d, queue %d)\n",
              cfg.clients, cfg.requests_per_client, node_count, edge_count,
              cfg.max_inflight, cfg.queue_depth);

  std::vector<ClientStats> per_client(cfg.clients);
  std::vector<std::thread> threads;
  threads.reserve(cfg.clients);
  WallTimer wall;
  for (int i = 0; i < cfg.clients; ++i) {
    threads.emplace_back([&, i] {
      per_client[i] =
          RunClient(i, server.port(), cfg, company_count, node_count);
    });
  }
  for (auto& t : threads) t.join();
  double duration = wall.ElapsedSeconds();
  server.Stop();

  ClientStats total;
  for (const auto& s : per_client) {
    total.ok += s.ok;
    total.shed += s.shed;
    total.stale += s.stale;
    total.errors += s.errors;
    total.retries += s.retries;
    total.transport_failures += s.transport_failures;
    total.latencies_ms.insert(total.latencies_ms.end(),
                              s.latencies_ms.begin(), s.latencies_ms.end());
  }
  std::sort(total.latencies_ms.begin(), total.latencies_ms.end());
  uint64_t responses = total.latencies_ms.size();
  double qps = duration > 0 ? static_cast<double>(responses) / duration : 0;
  double shed_rate =
      responses > 0 ? static_cast<double>(total.shed) /
                          static_cast<double>(responses)
                    : 0;
  double p50 = Percentile(total.latencies_ms, 0.50);
  double p90 = Percentile(total.latencies_ms, 0.90);
  double p99 = Percentile(total.latencies_ms, 0.99);
  double max_ms =
      total.latencies_ms.empty() ? 0.0 : total.latencies_ms.back();

  serve::Json doc = serve::Json::MakeObject();
  doc.Set("schema_version", serve::Json::Int(1));
  serve::Json jcfg = serve::Json::MakeObject();
  jcfg.Set("clients", serve::Json::Int(cfg.clients));
  jcfg.Set("requests_per_client", serve::Json::Int(cfg.requests_per_client));
  jcfg.Set("max_inflight", serve::Json::Int(cfg.max_inflight));
  jcfg.Set("queue_depth", serve::Json::Int(cfg.queue_depth));
  jcfg.Set("deadline_ms", serve::Json::Int(cfg.deadline_ms));
  doc.Set("config", jcfg);
  serve::Json jgraph = serve::Json::MakeObject();
  jgraph.Set("nodes", serve::Json::Int(static_cast<int64_t>(node_count)));
  jgraph.Set("edges", serve::Json::Int(static_cast<int64_t>(edge_count)));
  doc.Set("graph", jgraph);
  serve::Json jtot = serve::Json::MakeObject();
  jtot.Set("requests", serve::Json::Int(static_cast<int64_t>(
                           cfg.clients) * cfg.requests_per_client));
  jtot.Set("responses", serve::Json::Int(static_cast<int64_t>(responses)));
  jtot.Set("ok", serve::Json::Int(static_cast<int64_t>(total.ok)));
  jtot.Set("shed", serve::Json::Int(static_cast<int64_t>(total.shed)));
  jtot.Set("stale", serve::Json::Int(static_cast<int64_t>(total.stale)));
  jtot.Set("errors", serve::Json::Int(static_cast<int64_t>(total.errors)));
  jtot.Set("retries", serve::Json::Int(static_cast<int64_t>(total.retries)));
  jtot.Set("transport_failures",
           serve::Json::Int(static_cast<int64_t>(total.transport_failures)));
  doc.Set("totals", jtot);
  doc.Set("qps", serve::Json::Double(qps));
  doc.Set("shed_rate", serve::Json::Double(shed_rate));
  serve::Json jlat = serve::Json::MakeObject();
  jlat.Set("p50", serve::Json::Double(p50));
  jlat.Set("p90", serve::Json::Double(p90));
  jlat.Set("p99", serve::Json::Double(p99));
  jlat.Set("max", serve::Json::Double(max_ms));
  doc.Set("latency_ms", jlat);
  doc.Set("duration_seconds", serve::Json::Double(duration));

  std::string rendered = doc.Dump();
  FILE* f = std::fopen(cfg.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", cfg.out.c_str());
    return 1;
  }
  std::fprintf(f, "%s\n", rendered.c_str());
  std::fclose(f);

  std::printf("qps %.0f | p50 %.2fms p90 %.2fms p99 %.2fms max %.2fms | "
              "shed %.1f%% | errors %llu | transport failures %llu\n",
              qps, p50, p90, p99, max_ms, 100.0 * shed_rate,
              static_cast<unsigned long long>(total.errors),
              static_cast<unsigned long long>(total.transport_failures));
  std::printf("wrote %s\n", cfg.out.c_str());
  return total.transport_failures == 0 ? 0 : 1;
}
