// A2 — ablation of the two clustering levels of Algorithm 1: embedding
// (first level) and feature blocking (second level) toggled independently.
// Shows where the search-space reduction comes from and what each level
// costs.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "company/family.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"

using namespace vadalink;

int main() {
  bench::Header("Ablation A2: clustering levels on/off (2000 persons)");
  std::printf("%12s %10s %12s %16s %12s %12s\n", "embedding", "blocking",
              "elapsed_s", "pairs_compared", "links", "blocks");

  for (bool use_embedding : {false, true}) {
    for (bool use_blocking : {false, true}) {
      gen::RegisterConfig reg;
      reg.persons = 2000;
      reg.companies = 1500;
      reg.seed = 33;
      auto data = gen::GenerateRegister(reg);

      core::AugmentConfig cfg = bench::LightAugmentConfig();
      cfg.max_rounds = 1;
      cfg.use_embedding = use_embedding;
      cfg.use_blocking = use_blocking;
      cfg.blocking = company::DefaultPersonBlocking();
      core::VadaLink vl(cfg);
      vl.AddCandidate(std::make_unique<core::FamilyCandidate>(
          linkage::BayesLinkClassifier(company::DefaultPersonSchema())));

      WallTimer timer;
      auto stats = vl.Augment(&data.graph);
      double s = timer.ElapsedSeconds();
      if (!stats.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      bench::Row("%12s %10s %12.3f %16zu %12zu %12zu",
                 use_embedding ? "on" : "off", use_blocking ? "on" : "off",
                 s, stats->pairs_compared, stats->links_added,
                 stats->second_level_blocks);
    }
  }
  std::printf("\n(blocking delivers the bulk of the pair reduction on "
              "feature-rich person data; embedding adds graph-topology "
              "grouping and pays off in the recursive rounds)\n");
  return 0;
}
