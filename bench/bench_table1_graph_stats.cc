// T1 — the Section 2 dataset statistics of the paper, reproduced on the
// synthetic register (scaled ~1:80 from the 4.06M-node original; shapes and
// ratios are the target, not absolute counts).
//
// Paper (yearly average, Italian company register 2005-2018):
//   4.059M nodes, 3.960M edges, 4.058M SCCs (avg size ~1, largest 15),
//   >600K WCCs (avg ~6 nodes, largest >1M), avg degree ~1, max in-degree
//   >5K, max out-degree >28K, clustering coefficient ~0.0084, ~3K
//   self-loops, scale-free degree distribution.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "gen/register_simulator.h"
#include "graph/graph_algorithms.h"

using namespace vadalink;

int main() {
  bench::Header("Table 1: company-register graph statistics (paper Section 2)");

  gen::RegisterConfig cfg;
  cfg.persons = 30000;
  cfg.companies = 21000;
  cfg.share_density = 1.35;
  cfg.self_loop_rate = 0.0015;
  cfg.seed = 2018;

  WallTimer timer;
  auto data = gen::GenerateRegister(cfg);
  double gen_s = timer.ElapsedSeconds();
  timer.Restart();
  auto s = graph::ComputeGraphStats(data.graph);
  double stats_s = timer.ElapsedSeconds();

  std::printf("%-28s %18s %18s\n", "metric", "paper (4.06M nodes)",
              "measured (scaled)");
  bench::Row("%-28s %18s %18zu", "nodes", "4.059M", s.nodes);
  bench::Row("%-28s %18s %18zu", "edges", "3.960M", s.edges);
  bench::Row("%-28s %18s %18zu", "SCC count", "4.058M", s.scc_count);
  bench::Row("%-28s %18s %18.2f", "avg SCC size", "~1", s.avg_scc_size);
  bench::Row("%-28s %18s %18zu", "largest SCC", "15", s.largest_scc);
  bench::Row("%-28s %18s %18zu", "WCC count", ">600K", s.wcc_count);
  bench::Row("%-28s %18s %18.2f", "avg WCC size", "~6", s.avg_wcc_size);
  bench::Row("%-28s %18s %18zu", "largest WCC", ">1M", s.largest_wcc);
  bench::Row("%-28s %18s %18.2f", "avg in/out degree", "~1",
             s.avg_in_degree);
  bench::Row("%-28s %18s %18zu", "max in-degree", ">5K", s.max_in_degree);
  bench::Row("%-28s %18s %18zu", "max out-degree", ">28K",
             s.max_out_degree);
  bench::Row("%-28s %18s %18.4f", "clustering coefficient", "0.0084",
             s.clustering_coefficient);
  bench::Row("%-28s %18s %18zu", "self-loops (buy-backs)", "~3K",
             s.self_loops);
  bench::Row("%-28s %18s %18.2f", "power-law alpha (MLE)", "power law",
             s.power_law_alpha);
  std::printf("\n(generation %.2fs, analytics %.2fs; scale ~1:80 — compare "
              "ratios, not absolute counts)\n",
              gen_s, stats_s);
  return 0;
}
