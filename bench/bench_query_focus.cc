// Query-focus benchmark: goal-directed evaluation (Engine::Query — magic
// sets + dataflow pruning, DESIGN.md section 12) against full saturation
// on the paper's control and close-link programs over Barabási–Albert
// ownership graphs.
//
// For each workload the goal is the largest node that actually appears
// as the first argument of a goal fact under saturation (a long-tail
// company, not the hub — see RunSaturation), and both modes run at 1 and
// 8 threads. "agree" asserts the rendered goal answers are
// byte-identical across all four runs — Query(goal) must return exactly
// the goal-matching subset of the saturation fact set at every thread
// count. The process exits non-zero on any mismatch, so CI runs double as
// a correctness cross-check.
//
// `--engine-json FILE` emits the BENCH_engine.json document with the
// per-workload "query_focus" block (speedup, facts_avoided,
// fallback_count); see bench/engine_bench_json.h and
// tools/engine_bench_schema.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/engine_bench_json.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/magic.h"
#include "datalog/parser.h"
#include "gen/barabasi_albert.h"

using namespace vadalink;

namespace {

struct Workload {
  const char* name;
  size_t nodes;
  size_t edges_per_node;
  uint64_t seed;
  std::string rules;
  const char* goal_pred;  // binary predicate queried as pred(c, X)
};

std::vector<Workload> Workloads() {
  return {
      {"control_1000", 1000, 2, 3, core::ControlProgram(), "control"},
      {"closelink_600", 600, 1, 17, core::CloseLinkProgram(0.2, 8),
       "closelink"},
  };
}

std::string RenderTuple(const char* pred, const std::vector<datalog::Value>& t,
                        const datalog::SymbolTable& symbols) {
  std::string line = pred;
  for (const datalog::Value& v : t) line += "|" + v.ToString(symbols);
  return line;
}

/// Full saturation at `threads`; fills the run report and the sorted
/// rendered goal answers for goal_pred(goal_node, _). goal_node < 0 picks
/// (and returns) the LARGEST first argument over all goal facts: in a
/// Barabási–Albert graph the lowest ids are the hubs whose ownership cone
/// spans most of the graph, while late nodes are the low-degree long tail
/// that makes up almost all of a scale-free register — the typical target
/// of a keyed serve query, and the case demand-driven evaluation is for.
int RunSaturation(const Workload& w, const graph::PropertyGraph& g,
                  size_t threads, int64_t* goal_node,
                  bench::EngineRunReport* report, uint64_t* facts,
                  std::vector<std::string>* answers) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  auto program = datalog::ParseProgram(w.rules, &catalog);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }
  ParallelOptions par;
  par.threads = threads;
  auto pool = MakeThreadPool(par);
  datalog::EngineOptions opts;
  opts.pool = pool.get();
  datalog::Engine engine(&db, opts);
  WallTimer timer;
  if (auto st = engine.Run(*program); !st.ok()) {
    std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
    return 1;
  }
  report->seconds = timer.ElapsedSeconds();
  const datalog::EngineStats& stats = engine.stats();
  *facts = stats.facts_derived;
  report->facts_per_sec =
      report->seconds > 0
          ? static_cast<double>(stats.facts_derived) / report->seconds
          : 0.0;
  report->join_probes = stats.join_probes;
  report->plans_computed = stats.plans_computed;
  report->plan_cache_hits = stats.plan_cache_hits;

  uint32_t pred = catalog.predicates.Lookup(w.goal_pred);
  if (pred == UINT32_MAX) {
    std::fprintf(stderr, "error: %s derived no facts\n", w.goal_pred);
    return 1;
  }
  if (*goal_node < 0) {
    for (datalog::RowRef t : db.Scan(pred)) {
      if (t.size() == 2 && t[0].is_int() && t[0].AsInt() > *goal_node) {
        *goal_node = t[0].AsInt();
      }
    }
    if (*goal_node < 0) {
      std::fprintf(stderr, "error: no integer %s facts\n", w.goal_pred);
      return 1;
    }
  }
  answers->clear();
  for (datalog::RowRef t : db.Scan(pred)) {
    if (t.size() == 2 && t[0].is_int() && t[0].AsInt() == *goal_node) {
      answers->push_back(
          RenderTuple(w.goal_pred, t.ToTuple(), catalog.symbols));
    }
  }
  std::sort(answers->begin(), answers->end());
  return 0;
}

/// Goal-directed run at `threads`; fills the run report, the sorted
/// rendered answers, and whether the magic-set rewrite fell back.
int RunQuery(const Workload& w, const graph::PropertyGraph& g, size_t threads,
             int64_t goal_node, bench::EngineRunReport* report,
             uint64_t* facts, std::vector<std::string>* answers,
             bool* fell_back, std::vector<std::string>* plans,
             double* estimated_cost = nullptr, uint64_t* plan_us = nullptr) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  auto program = datalog::ParseProgram(w.rules, &catalog);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }
  auto goal = datalog::ParseQueryGoal(
      std::string(w.goal_pred) + "(" + std::to_string(goal_node) + ", X)",
      &catalog);
  if (!goal.ok()) {
    std::fprintf(stderr, "goal: %s\n", goal.status().ToString().c_str());
    return 1;
  }
  ParallelOptions par;
  par.threads = threads;
  auto pool = MakeThreadPool(par);
  datalog::EngineOptions opts;
  opts.pool = pool.get();
  datalog::Engine engine(&db, opts);
  WallTimer timer;
  auto rep = engine.Query(*program, *goal);
  if (!rep.ok()) {
    std::fprintf(stderr, "query: %s\n", rep.status().ToString().c_str());
    return 1;
  }
  report->seconds = timer.ElapsedSeconds();
  const datalog::EngineStats& stats = engine.stats();
  *facts = stats.facts_derived;
  report->facts_per_sec =
      report->seconds > 0
          ? static_cast<double>(stats.facts_derived) / report->seconds
          : 0.0;
  report->join_probes = stats.join_probes;
  report->plans_computed = stats.plans_computed;
  report->plan_cache_hits = stats.plan_cache_hits;
  *fell_back = !rep->rewritten;
  if (estimated_cost != nullptr) *estimated_cost = rep->estimated_cost;
  if (plan_us != nullptr) *plan_us = rep->plan_us;
  if (plans != nullptr) *plans = engine.PlanSummaries();
  answers->clear();
  for (const auto& t : rep->answers) {
    answers->push_back(RenderTuple(w.goal_pred, t, catalog.symbols));
  }
  std::sort(answers->begin(), answers->end());
  return 0;
}

int RunSuite(const std::string& json_path) {
  std::vector<bench::EngineWorkloadReport> reports;
  for (const Workload& w : Workloads()) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = w.nodes;
    ba.edges_per_node = w.edges_per_node;
    ba.seed = w.seed;
    auto g = gen::GenerateBarabasiAlbert(ba);

    bench::EngineWorkloadReport r;
    r.name = w.name;
    int64_t goal_node = -1;
    uint64_t sat_facts = 0, sat_facts_mt = 0, q_facts = 0, q_facts_mt = 0;
    bool fell_back = false, fell_back_mt = false;
    std::vector<std::string> sat1, sat8, q1, q8;
    bench::EngineRunReport sat_mt, q_mt;
    double estimated_cost = 0.0;
    uint64_t plan_us = 0;
    if (RunSaturation(w, g, 1, &goal_node, &r.worst_case, &sat_facts,
                      &sat1) != 0 ||
        RunSaturation(w, g, 8, &goal_node, &sat_mt, &sat_facts_mt, &sat8) !=
            0 ||
        RunQuery(w, g, 1, goal_node, &r.planned, &q_facts, &q1, &fell_back,
                 &r.plans, &estimated_cost, &plan_us) != 0 ||
        RunQuery(w, g, 8, goal_node, &q_mt, &q_facts_mt, &q8, &fell_back_mt,
                 nullptr) != 0) {
      return 1;
    }
    r.facts_derived = q_facts;
    r.agree = !q1.empty() && q1 == q8 && q1 == sat1 && q1 == sat8;
    r.has_query_focus = true;
    r.query_speedup = r.planned.seconds > 0
                          ? r.worst_case.seconds / r.planned.seconds
                          : 0.0;
    r.query_facts_avoided =
        sat_facts > q_facts ? sat_facts - q_facts : 0;
    r.query_fallback_count =
        (fell_back ? 1u : 0u) + (fell_back_mt ? 1u : 0u);
    // Estimated-vs-actual: the static estimate over the join probes the
    // planned query run actually issued (the work proxy the cost model
    // simulates). > 1 = the model over-estimated, < 1 = under-estimated.
    r.query_estimated_cost = estimated_cost;
    r.query_plan_us = plan_us;
    r.query_cost_ratio =
        estimated_cost /
        std::max(1.0, static_cast<double>(r.planned.join_probes));
    std::printf(
        "%-16s goal %s(%lld, X) | query %.4fs %6llu facts | saturation "
        "%.4fs %6llu facts | speedup %5.1fx | avoided %llu | agree %s\n",
        w.name, w.goal_pred, static_cast<long long>(goal_node),
        r.planned.seconds, static_cast<unsigned long long>(q_facts),
        r.worst_case.seconds, static_cast<unsigned long long>(sat_facts),
        r.query_speedup,
        static_cast<unsigned long long>(r.query_facts_avoided),
        r.agree ? "yes" : "NO!");
    reports.push_back(std::move(r));
  }
  if (!json_path.empty() &&
      !bench::WriteEngineBenchJson(json_path, "query_focus", reports)) {
    return 1;
  }
  for (const auto& r : reports) {
    if (!r.agree) {
      std::fprintf(stderr,
                   "FAIL: %s goal answers differ between query and "
                   "saturation runs\n",
                   r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-json") == 0) json_path = argv[i + 1];
  }
  bench::Header("Query focus: magic-set Engine::Query vs full saturation");
  return RunSuite(json_path);
}
