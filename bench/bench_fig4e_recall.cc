// Figure 4(e) — recall vs number of clusters, following the Section 6.2
// protocol (scaled down): for each random register-like graph S_i, run in
// "no cluster mode" to obtain every theoretically predictable link, sample
// 20% of those links as the removed set Theta_ij, then re-run VADA-LINK
// with an increasing number of clusters and measure the fraction of
// Theta_ij recovered.
//
// The cluster-count knob is the one the paper describes in Section 6.1:
// the selectivity of the blocking features is tweaked to "hijack the
// mapping into an increasing number of clusters of decreasing size". Here
// the person blocking key is (city, birth-year bucket) and the bucket
// width shrinks across the sweep — finer buckets mean more clusters and a
// growing chance that a linked pair (partners a few years apart, parents a
// generation apart) straddles a boundary.
//
// Expected shape: recall ~1 for few clusters, slow decay through tens of
// clusters, collapse below 50% for hundreds of clusters.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/naive_baseline.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"

using namespace vadalink;

namespace {

using Pair = std::pair<graph::NodeId, graph::NodeId>;

std::set<Pair> FamilyEdges(const graph::PropertyGraph& g) {
  std::set<Pair> out;
  g.ForEachEdge([&](graph::EdgeId e) {
    const std::string& label = g.edge_label(e);
    if (label == "PartnerOf" || label == "ParentOf" ||
        label == "SiblingOf") {
      out.insert(std::minmax(g.edge_src(e), g.edge_dst(e)));
    }
  });
  return out;
}

/// Quantizes birth_year into buckets of `width` years as the derived
/// blocking feature ("byb"). width == 0 disables the bucket (one cluster
/// per city only).
void SetBirthBuckets(graph::PropertyGraph* g, int64_t width) {
  for (graph::NodeId n = 0; n < g->node_count(); ++n) {
    const auto& by = g->GetNodeProperty(n, "birth_year");
    if (!by.is_int()) continue;
    int64_t bucket = width > 0 ? by.AsInt() / width : 0;
    g->SetNodeProperty(n, "byb", bucket);
  }
}

}  // namespace

int main() {
  bench::Header("Figure 4(e): recall vs #clusters (Section 6.2 protocol)");

  const size_t kGraphs = 3;   // paper: 10
  const size_t kSamples = 3;  // paper: 10
  const size_t kPersons = 500;
  // Sweep: no blocking at all (1 cluster), city-only, then city x
  // birth-year buckets of shrinking width.
  // Each step uses blocking keys increasingly finer than (and eventually
  // orthogonal to) the classifier's evidence, mirroring the paper's
  // selectivity sweep. prefix = surname prefix length (0 = whole name),
  // width = birth-year bucket width (0 = no bucket key).
  struct Config {
    bool blocking;
    std::vector<std::string> keys;
    size_t prefix;
    int64_t width;
  };
  const std::vector<Config> sweep{
      {false, {}, 0, 0},                              // 1 cluster
      {true, {"last_name"}, 1, 0},
      {true, {"last_name"}, 2, 0},
      {true, {"last_name"}, 3, 0},
      {true, {"last_name"}, 0, 0},
      {true, {"last_name", "city"}, 3, 0},
      {true, {"last_name", "city", "byb"}, 3, 16},
      {true, {"last_name", "city", "byb"}, 3, 4},
      {true, {"last_name", "city", "byb"}, 3, 1},
  };

  std::printf("%10s %12s\n", "clusters", "avg_recall");

  struct GraphCase {
    gen::RegisterConfig reg;
    std::vector<std::vector<Pair>> samples;
  };
  std::vector<GraphCase> cases;
  Rng sampler(99);
  for (size_t i = 0; i < kGraphs; ++i) {
    GraphCase gc;
    gc.reg.persons = kPersons;
    gc.reg.companies = kPersons * 3 / 4;
    gc.reg.seed = 1000 + i;
    auto data = gen::GenerateRegister(gc.reg);
    core::FamilyCandidate candidate(
        linkage::BayesLinkClassifier(company::DefaultPersonSchema()));
    auto stats = core::NaiveAugment(&data.graph, &candidate);
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::set<Pair> full = FamilyEdges(data.graph);
    std::vector<Pair> all(full.begin(), full.end());
    for (size_t j = 0; j < kSamples; ++j) {
      std::vector<Pair> sample;
      auto idx = sampler.SampleIndices(all.size(),
                                       std::max<size_t>(1, all.size() / 5));
      for (size_t x : idx) sample.push_back(all[x]);
      gc.samples.push_back(std::move(sample));
    }
    cases.push_back(std::move(gc));
  }

  for (const Config& conf : sweep) {
    double recall_sum = 0.0;
    size_t recall_count = 0;
    double clusters_sum = 0.0;
    for (const GraphCase& gc : cases) {
      auto data = gen::GenerateRegister(gc.reg);
      SetBirthBuckets(&data.graph, conf.width);

      core::AugmentConfig cfg = bench::LightAugmentConfig();
      cfg.use_embedding = false;  // isolate the blocking-selectivity knob
      cfg.use_blocking = conf.blocking;
      cfg.max_rounds = 1;
      cfg.blocking.keys = conf.keys;
      cfg.blocking.prefix_length = conf.prefix;
      core::VadaLink vl(cfg);
      vl.AddCandidate(std::make_unique<core::FamilyCandidate>(
          linkage::BayesLinkClassifier(company::DefaultPersonSchema())));
      auto stats = vl.Augment(&data.graph);
      if (!stats.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      clusters_sum += static_cast<double>(stats->second_level_blocks);
      std::set<Pair> recovered = FamilyEdges(data.graph);
      for (const auto& sample : gc.samples) {
        size_t hit = 0;
        for (const Pair& p : sample) {
          if (recovered.count(p)) ++hit;
        }
        recall_sum += sample.empty()
                          ? 1.0
                          : static_cast<double>(hit) / sample.size();
        ++recall_count;
      }
    }
    bench::Row("%10.0f %12.4f", clusters_sum / cases.size(),
               recall_sum / recall_count);
  }
  std::printf("\n(recall is maximal with one cluster, stays high while the "
              "blocking keys remain coarser than family feature spreads, "
              "and collapses once buckets are finer than the partner/parent "
              "birth-year gaps — Figure 4(e)'s shape)\n");
  return 0;
}
