// Shared emission of the BENCH_engine.json document: per-workload chase
// throughput, join-probe counts and the planner's chosen per-rule plans,
// under both join orders (planned vs forced worst-case). Validated in CI
// against tools/engine_bench_schema.json by
// tools/check_engine_bench_schema.py.
//
//   { "schema_version": 1,
//     "bench": "datalog_micro",
//     "workloads": [
//       { "name": "tc_chain_200", "facts_derived": 20100,
//         "planned":    {"seconds": ..., "facts_per_sec": ...,
//                        "join_probes": ..., "plans_computed": ...,
//                        "plan_cache_hits": ...},
//         "worst_case": { ...same fields... },
//         "plans": ["rule 0: e[delta]@scan tc@0", ...],
//         "agree": true } ] }
//
// "agree" asserts the sorted fact sets of the two runs are identical —
// the planner may only change enumeration order, never the fixpoint.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "datalog/database.h"

namespace vadalink::bench {

struct EngineRunReport {
  double seconds = 0;
  double facts_per_sec = 0;
  uint64_t join_probes = 0;
  uint64_t plans_computed = 0;
  uint64_t plan_cache_hits = 0;
};

struct EngineWorkloadReport {
  std::string name;
  uint64_t facts_derived = 0;
  EngineRunReport planned;
  EngineRunReport worst_case;
  std::vector<std::string> plans;  // planner summaries of the planned run
  bool agree = false;  // fact sets identical across join orders
  /// Optional query-focus block (bench_query_focus): planned = the
  /// goal-directed Engine::Query run, worst_case = full saturation, and
  /// "agree" asserts the goal answers are byte-identical across both
  /// modes and thread counts.
  bool has_query_focus = false;
  double query_speedup = 0;        // saturation seconds / query seconds
  uint64_t query_facts_avoided = 0;  // saturation-only derived facts
  uint64_t query_fallback_count = 0;  // 1 if the rewrite fell back
  /// Estimated-vs-actual cost comparison of the query run: the static
  /// estimate attached to the QueryReport, the planning time it took to
  /// produce it, and estimate / actual join probes (how far off the
  /// static model was; 1.0 = exact).
  double query_estimated_cost = 0;
  uint64_t query_plan_us = 0;
  double query_cost_ratio = 0;
};

/// Sorted, rendered copy of the whole fact base; equal fingerprints mean
/// equal fact sets regardless of derivation order.
inline std::vector<std::string> DatabaseFingerprint(
    const datalog::Database& db) {
  std::vector<std::string> out;
  const datalog::Catalog* cat = db.catalog();
  for (uint32_t p = 0; p < cat->predicates.size(); ++p) {
    const std::string& pred = cat->predicates.Name(p);
    for (datalog::RowRef row : db.Scan(p)) {
      std::string line = pred;
      for (size_t i = 0; i < row.size(); ++i) {
        line += "|" + row[i].ToString(cat->symbols);
      }
      out.push_back(std::move(line));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

inline bool WriteEngineBenchJson(
    const std::string& path, const std::string& bench_name,
    const std::vector<EngineWorkloadReport>& workloads) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"schema_version\": 1,\n  \"bench\": \"%s\",\n",
               JsonEscape(bench_name).c_str());
  std::fprintf(f, "  \"workloads\": [");
  for (size_t w = 0; w < workloads.size(); ++w) {
    const EngineWorkloadReport& r = workloads[w];
    std::fprintf(f, "%s\n    {\"name\": \"%s\", \"facts_derived\": %llu,",
                 w == 0 ? "" : ",", JsonEscape(r.name).c_str(),
                 static_cast<unsigned long long>(r.facts_derived));
    auto run = [&](const char* key, const EngineRunReport& e) {
      std::fprintf(f,
                   "\n     \"%s\": {\"seconds\": %.6f, "
                   "\"facts_per_sec\": %.1f, \"join_probes\": %llu, "
                   "\"plans_computed\": %llu, \"plan_cache_hits\": %llu},",
                   key, e.seconds, e.facts_per_sec,
                   static_cast<unsigned long long>(e.join_probes),
                   static_cast<unsigned long long>(e.plans_computed),
                   static_cast<unsigned long long>(e.plan_cache_hits));
    };
    run("planned", r.planned);
    run("worst_case", r.worst_case);
    if (r.has_query_focus) {
      std::fprintf(f,
                   "\n     \"query_focus\": {\"speedup\": %.2f, "
                   "\"facts_avoided\": %llu, \"fallback_count\": %llu, "
                   "\"estimated_cost\": %.6g, \"plan_us\": %llu, "
                   "\"cost_ratio\": %.4f},",
                   r.query_speedup,
                   static_cast<unsigned long long>(r.query_facts_avoided),
                   static_cast<unsigned long long>(r.query_fallback_count),
                   r.query_estimated_cost,
                   static_cast<unsigned long long>(r.query_plan_us),
                   r.query_cost_ratio);
    }
    std::fprintf(f, "\n     \"plans\": [");
    for (size_t i = 0; i < r.plans.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i == 0 ? "" : ", ",
                   JsonEscape(r.plans[i]).c_str());
    }
    std::fprintf(f, "],\n     \"agree\": %s}", r.agree ? "true" : "false");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

}  // namespace vadalink::bench
