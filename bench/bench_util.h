// Shared helpers for the experiment harnesses: aligned table printing and
// the light embedding configuration used by the figure benches (single-core
// container; the paper ran a 2-core laptop JVM — shapes, not absolute times,
// are the reproduction target).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

#include "core/vada_link.h"

namespace vadalink::bench {

/// printf-style row into a fixed-width table.
inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
  std::fflush(stdout);
}

inline void Header(const std::string& title) {
  std::printf("\n===== %s =====\n", title.c_str());
}

/// Embedding configuration scaled for the figure sweeps.
inline core::AugmentConfig LightAugmentConfig() {
  core::AugmentConfig cfg;
  cfg.embedding.walk.walk_length = 10;
  cfg.embedding.walk.walks_per_node = 4;
  cfg.embedding.skipgram.dimensions = 32;
  cfg.embedding.skipgram.epochs = 1;
  cfg.embedding.skipgram.window = 3;
  cfg.embedding.skipgram.negatives = 4;
  cfg.embedding.kmeans.k = 8;
  cfg.max_rounds = 2;
  return cfg;
}

}  // namespace vadalink::bench
