// Figure 4(c) — elapsed time vs number of clusters. The second-level
// blocking hash domain is restricted to k blocks (the paper "alters the
// feature mapping to hijack the clustering into an increasing number of
// clusters of decreasing size"). Expected shape: time drops steeply from
// the single-cluster (quadratic) case and flattens out past ~10-20
// clusters.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "company/family.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"

using namespace vadalink;

int main() {
  bench::Header("Figure 4(c): time vs #clusters (register-like data)");
  std::printf("%10s %14s %14s %16s\n", "clusters", "blocks_seen",
              "elapsed_s", "pairs_compared");

  gen::RegisterConfig reg;
  reg.persons = 3000;
  reg.companies = 2000;
  reg.seed = 21;

  for (size_t k : {1, 2, 5, 10, 20, 50, 100, 200, 500}) {
    auto data = gen::GenerateRegister(reg);
    core::AugmentConfig cfg = bench::LightAugmentConfig();
    cfg.max_rounds = 1;
    cfg.use_embedding = false;  // isolate the blocking knob, as in Sec. 6.1
    cfg.blocking = company::DefaultPersonBlocking();
    cfg.blocking.max_blocks = k;
    core::VadaLink vl(cfg);
    vl.AddCandidate(std::make_unique<core::FamilyCandidate>(
        linkage::BayesLinkClassifier(company::DefaultPersonSchema())));

    WallTimer timer;
    auto stats = vl.Augment(&data.graph);
    double s = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    bench::Row("%10zu %14zu %14.3f %16zu", k, stats->second_level_blocks, s,
               stats->pairs_compared);
  }
  std::printf("\n(k = 1 is the quadratic all-pairs extreme; past ~10-20 "
              "clusters the elapsed time flattens, as in the paper)\n");
  return 0;
}
