// A5 — ablation of the accumulated-ownership semantics (DESIGN.md open
// choice #1): Definition 2.5's exact simple-path sum vs the all-walks
// fixpoint that the paper's declarative Algorithm 6 computes. On DAGs the
// two coincide; on graphs with ownership cycles the walk sum dominates.
// Reports runtime and the largest value divergence.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "company/company_graph.h"
#include "company/ownership.h"
#include "gen/barabasi_albert.h"

using namespace vadalink;

int main() {
  bench::Header(
      "Ablation A5: accumulated ownership — simple paths vs walk sum");
  std::printf("%8s %8s %8s %14s %14s %14s\n", "nodes", "edges", "cycles",
              "simple_s", "walksum_s", "max_diff");

  for (size_t n : {100, 300, 1000}) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = n;
    ba.edges_per_node = 2;
    ba.seed = 9;
    auto g = gen::GenerateBarabasiAlbert(ba);

    // BA attachment is acyclic by construction; add back-edges to create
    // ownership cycles (cross-shareholding), with small weights.
    Rng rng(17);
    size_t back_edges = n / 20;
    for (size_t i = 0; i < back_edges; ++i) {
      graph::NodeId a = static_cast<graph::NodeId>(rng.UniformU64(n / 2));
      graph::NodeId b = static_cast<graph::NodeId>(
          n / 2 + rng.UniformU64(n / 2));
      auto e = g.AddEdge(a, b, "Shareholding");  // old -> new: back edge
      g.SetEdgeProperty(e.value(), "w", rng.UniformDouble(0.05, 0.3));
    }

    auto cg = company::CompanyGraph::FromPropertyGraph(g).value();

    company::OwnershipConfig cfg;
    cfg.epsilon = 1e-9;
    cfg.max_depth = 64;

    WallTimer timer;
    std::vector<std::unordered_map<graph::NodeId, double>> simple(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      simple[v] = company::AccumulatedOwnershipSimplePaths(cg, v, cfg);
    }
    double simple_s = timer.ElapsedSeconds();

    timer.Restart();
    std::vector<std::unordered_map<graph::NodeId, double>> walks(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      walks[v] = company::AccumulatedOwnershipWalkSum(cg, v, cfg);
    }
    double walks_s = timer.ElapsedSeconds();

    double max_diff = 0.0;
    for (graph::NodeId v = 0; v < n; ++v) {
      for (const auto& [target, phi] : walks[v]) {
        auto it = simple[v].find(target);
        double s = it == simple[v].end() ? 0.0 : it->second;
        max_diff = std::max(max_diff, phi - s);
      }
    }
    bench::Row("%8zu %8zu %8zu %14.4f %14.4f %14.6f", n, g.edge_count(),
               back_edges, simple_s, walks_s, max_diff);
  }
  std::printf("\n(walk sum >= simple-path sum everywhere; the divergence is "
              "confined to cyclic cross-shareholding structures, where "
              "Definition 2.5 is exponential and the fixpoint converges "
              "geometrically)\n");
  return 0;
}
