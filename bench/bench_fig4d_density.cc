// Figure 4(d) — elapsed time vs graph density: four Barabási-Albert
// scenarios (sparse m=1, normal m=2, dense m=8, superdense m=32) swept over
// 100..1000 nodes. Expected shape: sparse/normal/dense close together,
// superdense well above with superlinear growth — the embedding walks are
// the density-sensitive stage, exactly as the paper observes for
// #GraphEmbedClust.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/vada_link.h"
#include "gen/barabasi_albert.h"
#include "linkage/bayes.h"

using namespace vadalink;

namespace {

linkage::FeatureSchema SyntheticSchema() {
  linkage::FeatureSchema schema;
  for (int f = 1; f <= 6; ++f) {
    schema.Add({.property = "f" + std::to_string(f),
                .metric = linkage::FeatureMetric::kExact,
                .threshold = 0.5,
                .prob_if_close = 0.75,
                .prob_if_far = 0.25});
  }
  return schema;
}

}  // namespace

int main() {
  bench::Header("Figure 4(d): time vs density (BA synthetic scenarios)");
  struct Scenario {
    const char* name;
    size_t m;
  };
  const Scenario scenarios[] = {
      {"sparse", 1}, {"normal", 2}, {"dense", 8}, {"superdense", 32}};

  std::printf("%12s %8s %10s %12s\n", "scenario", "nodes", "edges",
              "elapsed_s");
  for (const Scenario& sc : scenarios) {
    for (size_t n : {100, 250, 500, 750, 1000}) {
      gen::BarabasiAlbertConfig ba;
      ba.nodes = n;
      ba.edges_per_node = sc.m;
      ba.as_company_graph = false;
      ba.seed = 13;
      auto g = gen::GenerateBarabasiAlbert(ba);

      core::AugmentConfig cfg = bench::LightAugmentConfig();
      cfg.max_rounds = 1;
      cfg.embedding.walk.walks_per_node = 8;  // stress the walk stage
      cfg.blocking.keys = {"f1", "f2"};
      core::VadaLink vl(cfg);
      vl.AddCandidate(std::make_unique<core::FamilyCandidate>(
          linkage::BayesLinkClassifier(SyntheticSchema())));

      WallTimer timer;
      auto stats = vl.Augment(&g);
      double s = timer.ElapsedSeconds();
      if (!stats.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     stats.status().ToString().c_str());
        return 1;
      }
      bench::Row("%12s %8zu %10zu %12.3f", sc.name, n, g.edge_count(), s);
    }
  }
  std::printf("\n(superdense sits well above the other three; the gap grows "
              "with n — Figure 4(d)'s shape)\n");
  return 0;
}
