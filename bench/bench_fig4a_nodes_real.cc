// Figure 4(a) — elapsed time vs number of nodes on register-like
// ("real-world") data: VADA-LINK (two-level clustering) against the naive
// exhaustive all-pairs baseline. Expected shape: VADA-LINK near-linear,
// naive quadratic, with the gap widening past a few thousand nodes.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/naive_baseline.h"
#include "core/vada_link.h"
#include "gen/register_simulator.h"

using namespace vadalink;

int main() {
  bench::Header(
      "Figure 4(a): time vs #nodes, register-like data, VADA-LINK vs naive");
  std::printf("%10s %14s %16s %14s %16s\n", "persons", "vadalink_s",
              "vl_pairs", "naive_s", "naive_pairs");

  const size_t kNaiveCap = 4000;  // naive is quadratic; cap its sweep
  for (size_t n : {1000, 2000, 4000, 6000, 8000, 10000}) {
    gen::RegisterConfig reg;
    reg.persons = n;
    reg.companies = n * 3 / 4;
    reg.seed = 11;
    auto data = gen::GenerateRegister(reg);

    core::AugmentConfig cfg = bench::LightAugmentConfig();
    cfg.max_rounds = 1;
    auto vl = core::MakeDefaultVadaLink(cfg);
    WallTimer timer;
    auto stats = vl.Augment(&data.graph);
    double vl_s = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }

    double naive_s = -1.0;
    size_t naive_pairs = 0;
    if (n <= kNaiveCap) {
      auto fresh = gen::GenerateRegister(reg);
      core::FamilyCandidate candidate(
          linkage::BayesLinkClassifier(company::DefaultPersonSchema()));
      timer.Restart();
      auto ns = core::NaiveAugment(&fresh.graph, &candidate);
      naive_s = timer.ElapsedSeconds();
      if (!ns.ok()) {
        std::fprintf(stderr, "error: %s\n", ns.status().ToString().c_str());
        return 1;
      }
      naive_pairs = ns->pairs_compared;
    }

    if (naive_s >= 0) {
      bench::Row("%10zu %14.3f %16zu %14.3f %16zu", n, vl_s,
                 stats->pairs_compared, naive_s, naive_pairs);
    } else {
      bench::Row("%10zu %14.3f %16zu %14s %16s", n, vl_s,
                 stats->pairs_compared, "-", "(skipped)");
    }
  }
  std::printf("\n(naive capped at 4000 persons; its time grows ~n^2 while "
              "VADA-LINK stays near-linear)\n");
  return 0;
}
