// Chase-memory benchmark: the space-bounded streaming chase
// (EngineOptions::streaming, DESIGN.md section 13) against the ordinary
// keep-everything chase, over Barabási–Albert ownership graphs.
//
// Three workloads cover the three memory mechanisms:
//   * control   — Algorithm 5; every derived predicate passes the
//                 evictability analysis, so the run is pure delta
//                 eviction.
//   * closelink — Algorithm 6; walk/closelink evict while the aggregate
//                 head accown (read twice by the third-party rule) is
//                 pinned resident — the analysis must keep it.
//   * officers  — a warded existential cascade: one labeled-null officer
//                 per company propagated down the ownership DAG, plus an
//                 audit rule whose frontier is the bare null. The pattern
//                 memo collapses its isomorphic re-firings to one.
//
// Each workload runs full and streaming at 1 and 8 threads. "identical"
// asserts the rendered @output answer sets — resident rows plus rows
// streamed through evict_sink — are byte-identical across all four runs;
// the process exits non-zero on any mismatch, so CI runs double as a
// correctness cross-check (the sanitizer job runs this under ASan).
// For the two null-free workloads the total fact count (resident +
// evicted) must also match the full chase exactly.
//
// `--json FILE` (default BENCH_chase_memory.json) emits the document
// validated by tools/check_chase_memory_schema.py against
// tools/chase_memory_schema.json: per-workload peak resident facts,
// evicted rows and memo hit rate, plus the suite-level peak ratio the
// paper-scale claim is stated over (`--nodes 1000000`).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/engine_bench_json.h"
#include "common/parallel.h"
#include "common/timer.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "gen/barabasi_albert.h"

using namespace vadalink;

namespace {

/// Warded existential cascade over the ownership relation: every company
/// appoints a labeled-null officer, officers follow ownership edges, and
/// each officer (a bare-null frontier) triggers an audit — the shape the
/// pattern memo exists for. The ground output is unaffected by memoization.
std::string OfficerProgram() {
  return R"(
company(X) -> officer(X, N).
officer(X, N), own(X, Y, W) -> officer(Y, N).
officer(X, N) -> audit(N, M).
officer(X, N) -> overseen(X).
@output("overseen").
)";
}

struct Workload {
  const char* name;
  size_t nodes;           // default; overridden by --nodes
  size_t edges_per_node;
  uint64_t seed;
  std::string rules;
  const char* output_pred;
  bool same_totals;  // null-free: streaming totals must equal full totals
};

std::vector<Workload> Workloads(size_t nodes_override) {
  std::vector<Workload> w = {
      {"control", 4000, 2, 3, core::ControlProgram(0.1), "control", true},
      {"closelink", 3000, 1, 17, core::CloseLinkProgram(0.05, 12),
       "closelink", true},
      {"officers", 4000, 2, 29, OfficerProgram(), "overseen", false},
  };
  if (nodes_override > 0) {
    for (Workload& x : w) x.nodes = nodes_override;
  }
  return w;
}

struct RunResult {
  size_t peak_resident = 0;
  size_t total_facts = 0;
  size_t evicted_rows = 0;
  size_t memo_queries = 0;
  size_t memo_hits = 0;
  double seconds = 0;
  std::vector<std::string> answers;  // sorted rendered output facts
};

/// One chase over a fresh database; streaming runs route every evicted
/// @output row through the sink, so `answers` is the union of sunk and
/// still-resident output rows — the streaming run's complete answer set.
int RunChase(const Workload& w, const graph::PropertyGraph& g, bool streaming,
             size_t threads, RunResult* out) {
  datalog::Catalog catalog;
  datalog::Database db(&catalog);
  core::MappingOptions map_opts;
  map_opts.generic_encoding = false;  // minimal EDB: company/person/own/voting
  if (auto st = core::LoadGraphFacts(g, &db, map_opts); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }
  auto program = datalog::ParseProgram(w.rules, &catalog);
  if (!program.ok()) {
    std::fprintf(stderr, "parse: %s\n", program.status().ToString().c_str());
    return 1;
  }
  ParallelOptions par;
  par.threads = threads;
  auto pool = MakeThreadPool(par);

  const uint32_t out_pred = catalog.predicates.Intern(w.output_pred);
  std::vector<std::string> sunk;
  datalog::EngineOptions opts;
  opts.pool = pool.get();
  opts.streaming = streaming;
  // The paper-scale run (--nodes 1000000) derives beyond the default
  // 50M-fact safety limit; the workloads here are known to terminate.
  opts.max_facts = static_cast<size_t>(4) << 30;
  if (streaming) {
    opts.evict_sink = [&](uint32_t pred, const datalog::Value* vals,
                          size_t n) {
      if (pred != out_pred) return;
      std::string line = w.output_pred;
      for (size_t i = 0; i < n; ++i) {
        line += "|" + vals[i].ToString(catalog.symbols);
      }
      sunk.push_back(std::move(line));
    };
  }
  datalog::Engine engine(&db, opts);
  WallTimer timer;
  if (auto st = engine.Run(*program); !st.ok()) {
    std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
    return 1;
  }
  out->seconds = timer.ElapsedSeconds();
  const datalog::EngineStats& stats = engine.stats();
  out->peak_resident = stats.peak_resident_facts;
  out->total_facts = db.TotalFacts();
  out->evicted_rows = stats.evicted_rows;
  out->memo_queries = stats.memo_queries;
  out->memo_hits = stats.memo_hits;

  out->answers = std::move(sunk);
  for (datalog::RowRef row : db.Scan(out_pred)) {
    std::string line = w.output_pred;
    for (size_t i = 0; i < row.size(); ++i) {
      line += "|" + row[i].ToString(catalog.symbols);
    }
    out->answers.push_back(std::move(line));
  }
  std::sort(out->answers.begin(), out->answers.end());
  return 0;
}

struct WorkloadReport {
  std::string name;
  size_t nodes = 0;
  RunResult full;       // 1 thread
  RunResult streaming;  // 1 thread
  double ratio = 0;     // streaming peak / full peak
  bool identical = false;
};

int RunSuite(const std::string& json_path, size_t nodes_override) {
  std::vector<WorkloadReport> reports;
  bool all_identical = true;
  size_t suite_full_peak = 0, suite_streaming_peak = 0;

  for (const Workload& w : Workloads(nodes_override)) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = w.nodes;
    ba.edges_per_node = w.edges_per_node;
    ba.seed = w.seed;
    auto g = gen::GenerateBarabasiAlbert(ba);

    WorkloadReport r;
    r.name = w.name;
    r.nodes = w.nodes;
    RunResult full_mt, streaming_mt;
    if (RunChase(w, g, /*streaming=*/false, 1, &r.full) != 0 ||
        RunChase(w, g, /*streaming=*/false, 8, &full_mt) != 0 ||
        RunChase(w, g, /*streaming=*/true, 1, &r.streaming) != 0 ||
        RunChase(w, g, /*streaming=*/true, 8, &streaming_mt) != 0) {
      return 1;
    }
    r.identical = !r.full.answers.empty() &&
                  r.full.answers == full_mt.answers &&
                  r.full.answers == r.streaming.answers &&
                  r.full.answers == streaming_mt.answers;
    if (w.same_totals &&
        (r.streaming.total_facts != r.full.total_facts ||
         streaming_mt.total_facts != full_mt.total_facts)) {
      std::fprintf(stderr,
                   "FAIL: %s streaming derived a different fact count "
                   "(%zu vs %zu) on a null-free program\n",
                   w.name, r.streaming.total_facts, r.full.total_facts);
      r.identical = false;
    }
    r.ratio = r.full.peak_resident > 0
                  ? static_cast<double>(r.streaming.peak_resident) /
                        static_cast<double>(r.full.peak_resident)
                  : 0.0;
    suite_full_peak += r.full.peak_resident;
    suite_streaming_peak += r.streaming.peak_resident;
    all_identical = all_identical && r.identical;

    double hit_rate =
        r.streaming.memo_queries > 0
            ? static_cast<double>(r.streaming.memo_hits) /
                  static_cast<double>(r.streaming.memo_queries)
            : 0.0;
    bench::Row(
        "%-10s n=%-7zu | full peak %8zu | streaming peak %8zu (ratio "
        "%.2f) | evicted %8zu | memo %zu/%zu (%.2f) | identical %s",
        w.name, w.nodes, r.full.peak_resident, r.streaming.peak_resident,
        r.ratio, r.streaming.evicted_rows, r.streaming.memo_hits,
        r.streaming.memo_queries, hit_rate, r.identical ? "yes" : "NO!");
    reports.push_back(std::move(r));
  }

  const double suite_ratio =
      suite_full_peak > 0 ? static_cast<double>(suite_streaming_peak) /
                                static_cast<double>(suite_full_peak)
                          : 0.0;
  bench::Row("suite: streaming peak %zu / full peak %zu = %.2f (bound 0.50)",
             suite_streaming_peak, suite_full_peak, suite_ratio);

  if (!json_path.empty()) {
    FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(f,
                 "{\n  \"schema_version\": 1,\n  \"bench\": "
                 "\"chase_memory\",\n  \"workloads\": [");
    for (size_t i = 0; i < reports.size(); ++i) {
      const WorkloadReport& r = reports[i];
      const double hit_rate =
          r.streaming.memo_queries > 0
              ? static_cast<double>(r.streaming.memo_hits) /
                    static_cast<double>(r.streaming.memo_queries)
              : 0.0;
      std::fprintf(
          f,
          "%s\n    {\"name\": \"%s\", \"nodes\": %zu,"
          "\n     \"full\": {\"peak_resident_facts\": %zu, "
          "\"total_facts\": %zu, \"seconds\": %.6f},"
          "\n     \"streaming\": {\"peak_resident_facts\": %zu, "
          "\"total_facts\": %zu, \"evicted_rows\": %zu, "
          "\"memo_queries\": %zu, \"memo_hits\": %zu, "
          "\"memo_hit_rate\": %.4f, \"seconds\": %.6f},"
          "\n     \"ratio\": %.4f, \"identical\": %s}",
          i == 0 ? "" : ",", bench::JsonEscape(r.name).c_str(), r.nodes,
          r.full.peak_resident, r.full.total_facts, r.full.seconds,
          r.streaming.peak_resident, r.streaming.total_facts,
          r.streaming.evicted_rows, r.streaming.memo_queries,
          r.streaming.memo_hits, hit_rate, r.streaming.seconds, r.ratio,
          r.identical ? "true" : "false");
    }
    std::fprintf(f,
                 "\n  ],\n  \"suite\": {\"full_peak_resident_facts\": %zu, "
                 "\"streaming_peak_resident_facts\": %zu, \"ratio\": %.4f, "
                 "\"bound\": 0.5, \"within_bound\": %s}\n}\n",
                 suite_full_peak, suite_streaming_peak, suite_ratio,
                 suite_ratio <= 0.5 ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: streaming and full chase disagree on an answer "
                 "set\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_chase_memory.json";
  size_t nodes = 0;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
    if (std::strcmp(argv[i], "--nodes") == 0) {
      nodes = static_cast<size_t>(std::strtoull(argv[i + 1], nullptr, 10));
    }
  }
  bench::Header("Chase memory: streaming (evicting) vs full chase");
  return RunSuite(json_path, nodes);
}
