// Speedup vs thread count for the four parallelised hot paths: node2vec
// walk generation, hogwild skip-gram training, k-means assignment,
// per-block candidate-pair scoring, and the engine's delta joins.
//
// Emits a JSON document (stdout) mapping each path to seconds and speedup
// per thread count, e.g.
//
//   { "hardware_concurrency": 8,
//     "paths": [ { "name": "node2vec_walks",
//                  "points": [ {"threads": 1, "seconds": 1.9,
//                               "speedup": 1.0}, ... ] }, ... ] }
//
// Run on a multi-core box; the acceptance target is >= 2.5x at 8 threads
// on at least two paths. `bench_parallel_scaling --threads 1,2,4,8`
// overrides the default thread list.
//
// `--metrics-json FILE` reuses the pipeline's MetricsRegistry: every stage
// call above runs with the registry attached (so the document carries the
// same counters/histograms a production run would), and each measured
// point is fed into the span tree as bench/<path>/t<threads>. Timings are
// included (a bench document is all about wall clock).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/timer.h"
#include "company/family.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "embed/kmeans.h"
#include "embed/node2vec.h"
#include "embed/skipgram.h"
#include "gen/barabasi_albert.h"
#include "gen/register_simulator.h"
#include "linkage/bayes.h"

using namespace vadalink;

namespace {

constexpr int kRepeats = 3;  // best-of to damp scheduler noise

/// Best-of-kRepeats wall time of fn(pool) with a pool of `threads`.
template <typename Fn>
double TimeWithThreads(size_t threads, const Fn& fn) {
  ParallelOptions opts;
  opts.threads = threads;
  auto pool = MakeThreadPool(opts);  // nullptr at threads = 1
  double best = -1.0;
  for (int r = 0; r < kRepeats; ++r) {
    WallTimer timer;
    fn(pool.get());
    double s = timer.ElapsedSeconds();
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

struct Point {
  size_t threads;
  double seconds;
};

void EmitPath(const char* name, const std::vector<Point>& points, bool last) {
  std::printf("    { \"name\": \"%s\",\n      \"points\": [\n", name);
  double baseline = points.empty() ? 1.0 : points.front().seconds;
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("        {\"threads\": %zu, \"seconds\": %.4f, "
                "\"speedup\": %.2f}%s\n",
                points[i].threads, points[i].seconds,
                points[i].seconds > 0.0 ? baseline / points[i].seconds : 0.0,
                i + 1 < points.size() ? "," : "");
  }
  std::printf("      ] }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::string metrics_json;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      thread_counts.clear();
      for (const char* p = argv[i + 1]; *p != '\0';) {
        thread_counts.push_back(static_cast<size_t>(std::strtoul(p, nullptr, 10)));
        p = std::strchr(p, ',');
        if (p == nullptr) break;
        ++p;
      }
    }
    if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      metrics_json = argv[i + 1];
    }
  }
  MetricsRegistry registry;
  MetricsRegistry* metrics = metrics_json.empty() ? nullptr : &registry;

  // --- shared fixtures ------------------------------------------------------
  gen::BarabasiAlbertConfig ba;
  ba.nodes = 4000;
  ba.edges_per_node = 4;
  ba.seed = 7;
  auto ba_graph = gen::GenerateBarabasiAlbert(ba);
  embed::WalkGraph walk_graph(ba_graph, "w");
  embed::WalkConfig walk_cfg;
  walk_cfg.walk_length = 30;
  walk_cfg.walks_per_node = 10;

  auto walks = embed::GenerateWalks(walk_graph, walk_cfg);
  embed::SkipGramConfig sg_cfg;
  sg_cfg.dimensions = 64;
  sg_cfg.epochs = 1;

  embed::EmbeddingMatrix points_matrix(20000, 32);
  {
    Rng rng(11);
    for (size_t v = 0; v < points_matrix.node_count(); ++v) {
      for (size_t d = 0; d < points_matrix.dimensions(); ++d) {
        points_matrix.row(v)[d] = static_cast<float>(rng.UniformDouble(
            static_cast<double>(v % 8), static_cast<double>(v % 8) + 1.0));
      }
    }
  }
  embed::KMeansConfig km_cfg;
  km_cfg.k = 16;
  km_cfg.max_iterations = 20;

  gen::RegisterConfig reg;
  reg.persons = 1500;
  reg.companies = 1000;
  reg.seed = 21;
  auto reg_data = gen::GenerateRegister(reg);
  linkage::BayesLinkClassifier classifier(company::DefaultPersonSchema());
  std::vector<std::pair<graph::NodeId, graph::NodeId>> pairs;
  for (size_t i = 0; i < reg_data.persons.size(); ++i) {
    for (size_t j = i + 1; j < i + 40 && j < reg_data.persons.size(); ++j) {
      pairs.emplace_back(reg_data.persons[i], reg_data.persons[j]);
    }
  }

  const std::string tc_rules = R"(
    e(X,Y) -> tc(X,Y).
    tc(X,Y), e(Y,Z) -> tc(X,Z).
  )";

  // --- measurements ---------------------------------------------------------
  std::vector<Point> walk_pts, sg_pts, km_pts, score_pts, engine_pts;
  for (size_t t : thread_counts) {
    walk_pts.push_back({t, TimeWithThreads(t, [&](ThreadPool* pool) {
      auto w = embed::GenerateWalks(walk_graph, walk_cfg, nullptr, pool,
                                    metrics);
      if (w.size() != ba_graph.node_count() * walk_cfg.walks_per_node) {
        std::fprintf(stderr, "walk count mismatch\n");
      }
    })});
    sg_pts.push_back({t, TimeWithThreads(t, [&](ThreadPool* pool) {
      auto emb =
          embed::TrainSkipGram(walks, ba_graph.node_count(), sg_cfg, nullptr,
                               pool, metrics);
      volatile float sink = emb.row(0)[0];
      (void)sink;
    })});
    km_pts.push_back({t, TimeWithThreads(t, [&](ThreadPool* pool) {
      auto r = embed::KMeans(points_matrix, km_cfg, nullptr, pool, metrics);
      volatile double sink = r.inertia;
      (void)sink;
    })});
    score_pts.push_back({t, TimeWithThreads(t, [&](ThreadPool* pool) {
      auto scores = classifier.ScorePairs(reg_data.graph, pairs, nullptr,
                                          pool, metrics);
      if (!scores.ok() || scores->size() != pairs.size()) {
        std::fprintf(stderr, "scoring failed\n");
      }
    })});
    engine_pts.push_back({t, TimeWithThreads(t, [&](ThreadPool* pool) {
      datalog::Catalog catalog;
      datalog::Database db(&catalog);
      Rng rng(5);
      for (int i = 0; i < 1200; ++i) {
        (void)db.InsertByName("e", {datalog::Value::Int(rng.UniformInt(0, 399)),
                                    datalog::Value::Int(rng.UniformInt(0, 399))});
      }
      auto program = datalog::ParseProgram(tc_rules, &catalog);
      datalog::EngineOptions opts;
      opts.pool = pool;
      opts.metrics = metrics;
      datalog::Engine engine(&db, opts);
      Status st = engine.Run(*program);
      if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    })});
  }

  // --- JSON -----------------------------------------------------------------
  std::printf("{\n  \"hardware_concurrency\": %u,\n  \"paths\": [\n",
              std::thread::hardware_concurrency());
  EmitPath("node2vec_walks", walk_pts, false);
  EmitPath("skipgram_training", sg_pts, false);
  EmitPath("kmeans_assignment", km_pts, false);
  EmitPath("pair_scoring", score_pts, false);
  EmitPath("engine_delta_joins", engine_pts, true);
  std::printf("  ]\n}\n");

  if (metrics != nullptr) {
    // Feed the measured points into the same span tree the pipeline uses,
    // then emit the one stable-schema document (timings on: a bench
    // document is all about wall clock).
    auto record = [&](const char* name, const std::vector<Point>& pts) {
      for (const Point& p : pts) {
        registry.RecordSpan(
            "bench/" + std::string(name) + "/t" + std::to_string(p.threads),
            static_cast<uint64_t>(p.seconds * 1e6), nullptr);
      }
    };
    record("node2vec_walks", walk_pts);
    record("skipgram_training", sg_pts);
    record("kmeans_assignment", km_pts);
    record("pair_scoring", score_pts);
    record("engine_delta_joins", engine_pts);
    MetricsJsonOptions json_opts;
    json_opts.include_timings = true;
    if (Status st = registry.WriteJsonFile(metrics_json, json_opts);
        !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  return 0;
}
