// Figure 4(b) — elapsed time vs number of nodes on synthetic Barabási-
// Albert graphs with much higher density than the register ("to stress the
// system even more"). Expected shape: elapsed times roughly an order of
// magnitude above Figure 4(a) at equal node counts, but still near-linear.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "core/vada_link.h"
#include "gen/barabasi_albert.h"
#include "linkage/bayes.h"

using namespace vadalink;

namespace {

// Six-feature exact-match schema for the synthetic nodes (f1..f6).
linkage::FeatureSchema SyntheticSchema() {
  linkage::FeatureSchema schema;
  for (int f = 1; f <= 6; ++f) {
    schema.Add({.property = "f" + std::to_string(f),
                .metric = linkage::FeatureMetric::kExact,
                .threshold = 0.5,
                .prob_if_close = 0.75,
                .prob_if_far = 0.25});
  }
  return schema;
}

}  // namespace

int main() {
  bench::Header(
      "Figure 4(b): time vs #nodes, dense synthetic (Barabasi-Albert m=8)");
  std::printf("%10s %12s %14s %16s\n", "nodes", "edges", "elapsed_s",
              "pairs_compared");

  for (size_t n : {1000, 2000, 4000, 6000, 8000, 10000}) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = n;
    ba.edges_per_node = 8;  // much denser than the register's ~1
    ba.as_company_graph = false;
    ba.seed = 5;
    auto g = gen::GenerateBarabasiAlbert(ba);

    core::AugmentConfig cfg = bench::LightAugmentConfig();
    cfg.max_rounds = 1;
    cfg.blocking.keys = {"f1", "f2"};
    core::VadaLink vl(cfg);
    vl.AddCandidate(std::make_unique<core::FamilyCandidate>(
        linkage::BayesLinkClassifier(SyntheticSchema())));

    WallTimer timer;
    auto stats = vl.Augment(&g);
    double s = timer.ElapsedSeconds();
    if (!stats.ok()) {
      std::fprintf(stderr, "error: %s\n", stats.status().ToString().c_str());
      return 1;
    }
    bench::Row("%10zu %12zu %14.3f %16zu", n, g.edge_count(), s,
               stats->pairs_compared);
  }
  std::printf("\n(dense topology raises embedding cost roughly an order of "
              "magnitude over Figure 4(a); trend stays near-linear)\n");
  return 0;
}
