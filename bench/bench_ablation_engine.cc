// A1 — ablation: the declarative (Datalog± engine) execution of the
// paper's programs against the compiled C++ implementations, on the same
// inputs. Checks that both paths agree and reports the runtime cost of
// declarativity ("20-30 lines of Vadalog vs 1k+ lines of code", Section 5 —
// the trade-off is expressiveness vs raw speed).
// `--engine-json FILE` instead runs the two programs at reduced sizes
// under both join orders and emits the BENCH_engine.json document (see
// bench/engine_bench_json.h).
#include <cstdio>
#include <cstring>
#include <set>

#include "bench/bench_util.h"
#include "bench/engine_bench_json.h"
#include "common/timer.h"
#include "company/close_link.h"
#include "company/control.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "gen/barabasi_albert.h"

using namespace vadalink;

namespace {

// One declarative run of a pre-parsed program over a pre-generated graph;
// graph generation and parsing stay outside the timed region (the chase —
// fact loading included, since the engine re-extracts facts per run — is
// what the report measures).
int RunGraphWorkload(const graph::PropertyGraph& g, datalog::Catalog* catalog,
                     const datalog::Program& program, datalog::JoinOrder order,
                     bench::EngineRunReport* report, uint64_t* facts,
                     std::vector<std::string>* plans,
                     std::vector<std::string>* fingerprint) {
  datalog::Database db(catalog);
  if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  datalog::EngineOptions opts;
  opts.join_order = order;
  datalog::Engine engine(&db, opts);
  WallTimer timer;
  if (auto st = engine.Run(program); !st.ok()) {
    std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
    return 1;
  }
  report->seconds = timer.ElapsedSeconds();
  const datalog::EngineStats& stats = engine.stats();
  *facts = stats.facts_derived;
  report->facts_per_sec =
      report->seconds > 0
          ? static_cast<double>(stats.facts_derived) / report->seconds
          : 0.0;
  report->join_probes = stats.join_probes;
  report->plans_computed = stats.plans_computed;
  report->plan_cache_hits = stats.plan_cache_hits;
  if (plans != nullptr) *plans = engine.PlanSummaries();
  if (fingerprint != nullptr) *fingerprint = bench::DatabaseFingerprint(db);
  return 0;
}

int EmitEngineJson(const std::string& path) {
  struct Workload {
    const char* name;
    size_t nodes;
    size_t edges_per_node;
    uint64_t seed;
    std::string rules;
  };
  const Workload workloads[] = {
      {"control_300", 300, 2, 3, core::ControlProgram()},
      {"closelink_100", 100, 1, 17, core::CloseLinkProgram(0.2, 8)},
  };
  std::vector<bench::EngineWorkloadReport> reports;
  for (const Workload& w : workloads) {
    bench::EngineWorkloadReport r;
    r.name = w.name;
    gen::BarabasiAlbertConfig ba;
    ba.nodes = w.nodes;
    ba.edges_per_node = w.edges_per_node;
    ba.seed = w.seed;
    auto g = gen::GenerateBarabasiAlbert(ba);
    datalog::Catalog catalog;
    auto program = datalog::ParseProgram(w.rules, &catalog);
    if (!program.ok()) {
      std::fprintf(stderr, "parse: %s\n",
                   program.status().ToString().c_str());
      return 1;
    }
    uint64_t planned_facts = 0, worst_facts = 0;
    std::vector<std::string> planned_fp, worst_fp;
    if (RunGraphWorkload(g, &catalog, *program, datalog::JoinOrder::kPlanned,
                         &r.planned, &planned_facts, &r.plans,
                         &planned_fp) != 0 ||
        RunGraphWorkload(g, &catalog, *program,
                         datalog::JoinOrder::kWorstCase, &r.worst_case,
                         &worst_facts, nullptr, &worst_fp) != 0) {
      return 1;
    }
    r.facts_derived = planned_facts;
    r.agree = planned_facts == worst_facts && planned_fp == worst_fp;
    std::printf(
        "%-16s facts %8llu | planned %8.0f f/s %9llu probes | "
        "worst %8.0f f/s %9llu probes | agree %s\n",
        w.name, static_cast<unsigned long long>(planned_facts),
        r.planned.facts_per_sec,
        static_cast<unsigned long long>(r.planned.join_probes),
        r.worst_case.facts_per_sec,
        static_cast<unsigned long long>(r.worst_case.join_probes),
        r.agree ? "yes" : "NO!");
    reports.push_back(std::move(r));
  }
  if (!bench::WriteEngineBenchJson(path, "ablation_engine", reports)) {
    return 1;
  }
  for (const auto& r : reports) {
    if (!r.agree) {
      std::fprintf(stderr, "FAIL: %s fact sets differ across join orders\n",
                   r.name.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--engine-json") == 0) {
      return EmitEngineJson(argv[i + 1]);
    }
  }
  bench::Header("Ablation A1: declarative (Datalog) vs compiled reasoning");

  // ---- company control ------------------------------------------------------
  std::printf("company control (Definition 2.3):\n");
  std::printf("%8s %10s %14s %14s %10s %8s\n", "nodes", "edges",
              "datalog_s", "compiled_s", "edges_out", "agree");
  for (size_t n : {100, 300, 1000, 3000}) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = n;
    ba.edges_per_node = 2;
    ba.seed = 3;
    auto g = gen::GenerateBarabasiAlbert(ba);

    datalog::Catalog catalog;
    datalog::Database db(&catalog);
    if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto program = datalog::ParseProgram(core::ControlProgram(), &catalog);
    datalog::Engine engine(&db);
    WallTimer timer;
    if (auto st = engine.Run(*program); !st.ok()) {
      std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
      return 1;
    }
    double datalog_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> declarative;
    for (datalog::RowRef t : db.Scan("control")) {
      declarative.insert({t[0].AsInt(), t[1].AsInt()});
    }

    timer.Restart();
    auto cg = company::CompanyGraph::FromPropertyGraph(g).value();
    auto edges = company::AllControlEdges(cg);
    double compiled_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> compiled;
    for (const auto& e : edges) compiled.insert({e.controller, e.controlled});

    bench::Row("%8zu %10zu %14.4f %14.4f %10zu %8s", n, g.edge_count(),
               datalog_s, compiled_s, compiled.size(),
               declarative == compiled ? "yes" : "NO!");
  }

  // ---- close links ------------------------------------------------------------
  std::printf("\nclose links (Definition 2.6, walk-sum semantics, depth 8):\n");
  std::printf("%8s %10s %14s %14s %10s %8s\n", "nodes", "edges",
              "datalog_s", "compiled_s", "pairs_out", "agree");
  for (size_t n : {50, 100, 200, 400}) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = n;
    ba.edges_per_node = 1;  // sparse: walk enumeration is exponential-ish
    ba.seed = 17;
    auto g = gen::GenerateBarabasiAlbert(ba);

    datalog::Catalog catalog;
    datalog::Database db(&catalog);
    if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto program =
        datalog::ParseProgram(core::CloseLinkProgram(0.2, 8), &catalog);
    datalog::Engine engine(&db);
    WallTimer timer;
    if (auto st = engine.Run(*program); !st.ok()) {
      std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
      return 1;
    }
    double datalog_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> declarative;
    for (datalog::RowRef t : db.Scan("closelink")) {
      int64_t a = t[0].AsInt(), b = t[1].AsInt();
      declarative.insert({std::min(a, b), std::max(a, b)});
    }

    timer.Restart();
    auto cg = company::CompanyGraph::FromPropertyGraph(g).value();
    company::CloseLinkConfig cl;
    cl.exact_paths = false;
    cl.ownership.max_depth = 8;
    auto links = company::AllCloseLinks(cg, cl);
    double compiled_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> compiled;
    for (const auto& e : links) {
      compiled.insert({std::min(e.x, e.y), std::max(e.x, e.y)});
    }

    bench::Row("%8zu %10zu %14.4f %14.4f %10zu %8s", n, g.edge_count(),
               datalog_s, compiled_s, compiled.size(),
               declarative == compiled ? "yes" : "NO!");
  }
  std::printf("\n(the compiled path is 1-3 orders of magnitude faster; the "
              "declarative path buys 20-30 line programs, schema "
              "independence and provenance)\n");
  return 0;
}
