// A1 — ablation: the declarative (Datalog± engine) execution of the
// paper's programs against the compiled C++ implementations, on the same
// inputs. Checks that both paths agree and reports the runtime cost of
// declarativity ("20-30 lines of Vadalog vs 1k+ lines of code", Section 5 —
// the trade-off is expressiveness vs raw speed).
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "company/close_link.h"
#include "company/control.h"
#include "core/mapping.h"
#include "core/vadalog_programs.h"
#include "datalog/engine.h"
#include "datalog/parser.h"
#include "gen/barabasi_albert.h"

using namespace vadalink;

int main() {
  bench::Header("Ablation A1: declarative (Datalog) vs compiled reasoning");

  // ---- company control ------------------------------------------------------
  std::printf("company control (Definition 2.3):\n");
  std::printf("%8s %10s %14s %14s %10s %8s\n", "nodes", "edges",
              "datalog_s", "compiled_s", "edges_out", "agree");
  for (size_t n : {100, 300, 1000, 3000}) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = n;
    ba.edges_per_node = 2;
    ba.seed = 3;
    auto g = gen::GenerateBarabasiAlbert(ba);

    datalog::Catalog catalog;
    datalog::Database db(&catalog);
    if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto program = datalog::ParseProgram(core::ControlProgram(), &catalog);
    datalog::Engine engine(&db);
    WallTimer timer;
    if (auto st = engine.Run(*program); !st.ok()) {
      std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
      return 1;
    }
    double datalog_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> declarative;
    for (const auto& t : db.TuplesOf("control")) {
      declarative.insert({t[0].AsInt(), t[1].AsInt()});
    }

    timer.Restart();
    auto cg = company::CompanyGraph::FromPropertyGraph(g).value();
    auto edges = company::AllControlEdges(cg);
    double compiled_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> compiled;
    for (const auto& e : edges) compiled.insert({e.controller, e.controlled});

    bench::Row("%8zu %10zu %14.4f %14.4f %10zu %8s", n, g.edge_count(),
               datalog_s, compiled_s, compiled.size(),
               declarative == compiled ? "yes" : "NO!");
  }

  // ---- close links ------------------------------------------------------------
  std::printf("\nclose links (Definition 2.6, walk-sum semantics, depth 8):\n");
  std::printf("%8s %10s %14s %14s %10s %8s\n", "nodes", "edges",
              "datalog_s", "compiled_s", "pairs_out", "agree");
  for (size_t n : {50, 100, 200, 400}) {
    gen::BarabasiAlbertConfig ba;
    ba.nodes = n;
    ba.edges_per_node = 1;  // sparse: walk enumeration is exponential-ish
    ba.seed = 17;
    auto g = gen::GenerateBarabasiAlbert(ba);

    datalog::Catalog catalog;
    datalog::Database db(&catalog);
    if (auto st = core::LoadGraphFacts(g, &db); !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    auto program =
        datalog::ParseProgram(core::CloseLinkProgram(0.2, 8), &catalog);
    datalog::Engine engine(&db);
    WallTimer timer;
    if (auto st = engine.Run(*program); !st.ok()) {
      std::fprintf(stderr, "engine: %s\n", st.ToString().c_str());
      return 1;
    }
    double datalog_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> declarative;
    for (const auto& t : db.TuplesOf("closelink")) {
      int64_t a = t[0].AsInt(), b = t[1].AsInt();
      declarative.insert({std::min(a, b), std::max(a, b)});
    }

    timer.Restart();
    auto cg = company::CompanyGraph::FromPropertyGraph(g).value();
    company::CloseLinkConfig cl;
    cl.exact_paths = false;
    cl.ownership.max_depth = 8;
    auto links = company::AllCloseLinks(cg, cl);
    double compiled_s = timer.ElapsedSeconds();
    std::set<std::pair<int64_t, int64_t>> compiled;
    for (const auto& e : links) {
      compiled.insert({std::min(e.x, e.y), std::max(e.x, e.y)});
    }

    bench::Row("%8zu %10zu %14.4f %14.4f %10zu %8s", n, g.edge_count(),
               datalog_s, compiled_s, compiled.size(),
               declarative == compiled ? "yes" : "NO!");
  }
  std::printf("\n(the compiled path is 1-3 orders of magnitude faster; the "
              "declarative path buys 20-30 line programs, schema "
              "independence and provenance)\n");
  return 0;
}
