// A4 — microbenchmarks of the embedding substrate: node2vec walk
// generation, skip-gram training, k-means clustering.
#include <benchmark/benchmark.h>

#include "embed/embed_clusterer.h"
#include "embed/kmeans.h"
#include "embed/node2vec.h"
#include "embed/skipgram.h"
#include "gen/barabasi_albert.h"

using namespace vadalink;
using namespace vadalink::embed;

namespace {

graph::PropertyGraph MakeGraph(size_t n, size_t m) {
  gen::BarabasiAlbertConfig ba;
  ba.nodes = n;
  ba.edges_per_node = m;
  ba.seed = 7;
  return gen::GenerateBarabasiAlbert(ba);
}

void BM_WalkGeneration(benchmark::State& state) {
  auto g = MakeGraph(state.range(0), 4);
  WalkGraph wg(g, "w");
  WalkConfig cfg;
  cfg.walk_length = 20;
  cfg.walks_per_node = 4;
  size_t steps = 0;
  for (auto _ : state) {
    auto walks = GenerateWalks(wg, cfg);
    for (const auto& w : walks) steps += w.size();
    benchmark::DoNotOptimize(walks.size());
  }
  state.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WalkGeneration)->Arg(1000)->Arg(5000);

void BM_SkipGramTraining(benchmark::State& state) {
  auto g = MakeGraph(state.range(0), 4);
  WalkGraph wg(g, "w");
  WalkConfig wc;
  wc.walk_length = 20;
  wc.walks_per_node = 4;
  auto walks = GenerateWalks(wg, wc);
  SkipGramConfig sc;
  sc.dimensions = 64;
  sc.epochs = 1;
  for (auto _ : state) {
    auto emb = TrainSkipGram(walks, g.node_count(), sc);
    benchmark::DoNotOptimize(emb.row(0)[0]);
  }
}
BENCHMARK(BM_SkipGramTraining)->Arg(1000)->Arg(5000);

void BM_KMeansClustering(benchmark::State& state) {
  auto g = MakeGraph(2000, 4);
  WalkGraph wg(g, "w");
  WalkConfig wc;
  wc.walks_per_node = 2;
  auto walks = GenerateWalks(wg, wc);
  SkipGramConfig sc;
  sc.dimensions = 64;
  sc.epochs = 1;
  auto emb = TrainSkipGram(walks, g.node_count(), sc);
  KMeansConfig kc;
  kc.k = state.range(0);
  for (auto _ : state) {
    auto res = KMeans(emb, kc);
    benchmark::DoNotOptimize(res.inertia);
  }
}
BENCHMARK(BM_KMeansClustering)->Arg(4)->Arg(16)->Arg(64);

void BM_EndToEndClusterer(benchmark::State& state) {
  auto g = MakeGraph(state.range(0), 2);
  EmbedClusterConfig cfg;
  cfg.walk.walks_per_node = 4;
  cfg.skipgram.dimensions = 32;
  cfg.skipgram.epochs = 1;
  cfg.kmeans.k = 8;
  EmbedClusterer clusterer(cfg);
  for (auto _ : state) {
    auto assignment = clusterer.Cluster(g);
    benchmark::DoNotOptimize(assignment.ok() ? assignment->size() : 0);
  }
}
BENCHMARK(BM_EndToEndClusterer)->Arg(1000)->Arg(3000);

}  // namespace

BENCHMARK_MAIN();
